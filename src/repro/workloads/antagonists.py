"""Antagonist archetypes: the jobs that cause CPU interference.

The case studies name their antagonists — video processing (case 1), a
best-effort batch job (case 2), scientific simulation (case 4), a replayer
(case 5), a MapReduce worker (case 6).  Each archetype here couples a large
shared-resource appetite (cache churn, memory-bandwidth streaming) with
bursty CPU demand; the burstiness is what lets the victim's CPI spikes
line up with the antagonist's CPU-usage spikes in the correlation analysis.

The CPU_SPINNER archetype is deliberately *innocent*: lots of CPU, almost no
shared-resource pressure.  It exists so accuracy experiments can measure how
often naive usage-ranking baselines accuse the wrong task, and how often
CPI2's correlation does not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cluster.interference import ResourceProfile
from repro.cluster.job import JobSpec
from repro.cluster.task import PriorityBand, SchedulingClass
from repro.workloads.base import SyntheticWorkload
from repro.workloads.batch import BatchWorkload
from repro.workloads.demand import on_off, with_noise

__all__ = ["AntagonistKind", "make_antagonist_workload",
           "make_antagonist_job_spec"]


class AntagonistKind(enum.Enum):
    """Named antagonist archetypes from the paper's case studies."""

    VIDEO_PROCESSING = "video-processing"
    SCIENTIFIC_SIMULATION = "scientific-simulation"
    REPLAYER = "replayer"
    CACHE_THRASHER = "cache-thrasher"
    MEMBW_HOG = "membw-hog"
    COMPRESSION = "compression"
    CPU_SPINNER = "cpu-spinner"


@dataclass(frozen=True)
class _AntagonistTraits:
    base_cpi: float
    demand_on: float
    demand_off: float
    burst_period: int
    burst_duty: float
    threads: int
    profile: ResourceProfile


_TRAITS: dict[AntagonistKind, _AntagonistTraits] = {
    AntagonistKind.VIDEO_PROCESSING: _AntagonistTraits(
        base_cpi=1.6, demand_on=6.0, demand_off=0.4,
        burst_period=600, burst_duty=0.55, threads=12,
        profile=ResourceProfile(
            cache_mib_per_cpu=6.0, membw_gbps_per_cpu=4.0,
            cache_sensitivity=0.3, membw_sensitivity=0.3, base_l3_mpki=12.0)),
    AntagonistKind.SCIENTIFIC_SIMULATION: _AntagonistTraits(
        base_cpi=1.1, demand_on=3.0, demand_off=1.0,
        burst_period=900, burst_duty=0.6, threads=16,
        profile=ResourceProfile(
            cache_mib_per_cpu=4.0, membw_gbps_per_cpu=3.0,
            cache_sensitivity=0.4, membw_sensitivity=0.4, base_l3_mpki=8.0)),
    AntagonistKind.REPLAYER: _AntagonistTraits(
        base_cpi=1.4, demand_on=4.0, demand_off=0.2,
        burst_period=500, burst_duty=0.5, threads=8,
        profile=ResourceProfile(
            cache_mib_per_cpu=5.0, membw_gbps_per_cpu=3.5,
            cache_sensitivity=0.3, membw_sensitivity=0.3, base_l3_mpki=10.0)),
    AntagonistKind.CACHE_THRASHER: _AntagonistTraits(
        base_cpi=2.2, demand_on=4.0, demand_off=0.5,
        burst_period=400, burst_duty=0.5, threads=4,
        profile=ResourceProfile(
            cache_mib_per_cpu=9.0, membw_gbps_per_cpu=2.0,
            cache_sensitivity=0.2, membw_sensitivity=0.2, base_l3_mpki=20.0)),
    AntagonistKind.MEMBW_HOG: _AntagonistTraits(
        base_cpi=1.8, demand_on=5.0, demand_off=0.3,
        burst_period=450, burst_duty=0.5, threads=6,
        profile=ResourceProfile(
            cache_mib_per_cpu=2.0, membw_gbps_per_cpu=7.0,
            cache_sensitivity=0.2, membw_sensitivity=0.3, base_l3_mpki=15.0)),
    AntagonistKind.COMPRESSION: _AntagonistTraits(
        base_cpi=1.3, demand_on=2.5, demand_off=0.5,
        burst_period=700, burst_duty=0.6, threads=4,
        profile=ResourceProfile(
            cache_mib_per_cpu=3.5, membw_gbps_per_cpu=2.5,
            cache_sensitivity=0.3, membw_sensitivity=0.3, base_l3_mpki=7.0)),
    AntagonistKind.CPU_SPINNER: _AntagonistTraits(
        base_cpi=0.7, demand_on=5.0, demand_off=0.5,
        burst_period=550, burst_duty=0.5, threads=8,
        profile=ResourceProfile(
            cache_mib_per_cpu=0.05, membw_gbps_per_cpu=0.05,
            cache_sensitivity=0.1, membw_sensitivity=0.1, base_l3_mpki=0.2)),
}


def make_antagonist_workload(
    kind: AntagonistKind,
    rng: np.random.Generator,
    demand_scale: float = 1.0,
    phase: int | None = None,
    demand_noise: float = 0.1,
) -> SyntheticWorkload:
    """Build one antagonist task's workload model.

    Args:
        kind: the archetype.
        rng: per-task noise source (also picks a burst phase if not given).
        demand_scale: multiplier on the archetype's nominal demand.
        phase: burst-phase offset in seconds; random if ``None``.
        demand_noise: per-second fractional demand noise.
    """
    traits = _TRAITS[kind]
    if phase is None:
        phase = int(rng.integers(traits.burst_period))
    demand = with_noise(
        on_off(traits.demand_on * demand_scale, traits.demand_off * demand_scale,
               period=traits.burst_period, duty=traits.burst_duty, phase=phase),
        demand_noise, rng)
    return BatchWorkload(
        rng=rng,
        demand=demand,
        base_cpi=traits.base_cpi,
        profile=traits.profile,
        threads=traits.threads,
    )


def make_antagonist_job_spec(
    name: str,
    kind: AntagonistKind,
    num_tasks: int = 1,
    seed: int = 0,
    cpu_limit_per_task: float = 8.0,
    demand_scale: float = 1.0,
    best_effort: bool = False,
    priority_band: PriorityBand = PriorityBand.NONPRODUCTION,
) -> JobSpec:
    """A :class:`JobSpec` whose tasks are antagonists of the given kind."""

    def factory(index: int) -> SyntheticWorkload:
        rng = np.random.default_rng(np.random.SeedSequence((seed, index)))
        return make_antagonist_workload(kind, rng, demand_scale=demand_scale)

    return JobSpec(
        name=name,
        num_tasks=num_tasks,
        scheduling_class=(SchedulingClass.BEST_EFFORT if best_effort
                          else SchedulingClass.BATCH),
        priority_band=priority_band,
        cpu_limit_per_task=cpu_limit_per_task,
        workload_factory=factory,
    )
