"""The base synthetic workload: glue between demand functions and the simulator.

:class:`SyntheticWorkload` implements the cluster's
:class:`~repro.cluster.task.WorkloadModel` protocol from pluggable parts —
a demand function, a resource profile, a base CPI (optionally modulated over
time, e.g. by a diurnal instruction-mix drift), and a thread-count function.
Domain workloads (web-search tiers, batch/MapReduce, antagonists) specialise
it rather than reimplementing the protocol.

:class:`TransactionCounter` converts retired-instruction deltas into
application transactions, which is how the Figure 2 harness gets a TPS series
to correlate against IPS: in a real batch job the two are linked by the
(mildly varying) instruction cost of a transaction.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cluster.interference import ResourceProfile
from repro.workloads.demand import DemandFn

__all__ = ["SyntheticWorkload", "TransactionCounter"]


class SyntheticWorkload:
    """A concrete workload assembled from pluggable pieces."""

    def __init__(
        self,
        base_cpi: float,
        profile: ResourceProfile,
        demand: DemandFn,
        threads: int | Callable[[int], int] = 8,
        cpi_modulation: Optional[Callable[[int], float]] = None,
    ):
        """Args:
            base_cpi: contention-free CPI on the reference platform.
            profile: shared-resource pressure/sensitivity.
            demand: CPU demand over time.
            threads: thread count, fixed or time-varying.
            cpi_modulation: optional multiplier on base CPI over time
                (instruction-mix drift; Figure 5's diurnal component).
        """
        if base_cpi <= 0:
            raise ValueError(f"base_cpi must be positive, got {base_cpi}")
        self._base_cpi = base_cpi
        self._profile = profile
        self._demand = demand
        self._threads = threads
        self._cpi_modulation = cpi_modulation
        self._now = 0
        self.capped_seconds = 0
        self.granted_cpu_seconds = 0.0

    # -- WorkloadModel protocol -------------------------------------------------

    def cpu_demand(self, t: int) -> float:
        """Desired CPU-sec/sec at time ``t``."""
        # NaN-safe clamp: ``max(0.0, d)`` would be argument-order-sensitive
        # for NaN; the branch form returns 0.0 for every non-positive and
        # non-finite demand, matching with_noise/scaled and the tick loop.
        d = self._demand(t)
        return d if d > 0.0 else 0.0

    def base_cpi(self) -> float:
        """Current contention-free CPI (modulation applied at the last tick)."""
        if self._cpi_modulation is None:
            return self._base_cpi
        return self._base_cpi * max(1e-6, self._cpi_modulation(self._now))

    def resource_profile(self) -> ResourceProfile:
        """The workload's shared-resource profile."""
        return self._profile

    def thread_count(self, t: int) -> int:
        """Threads alive at ``t``."""
        if callable(self._threads):
            return max(0, int(self._threads(t)))
        return self._threads

    def on_tick(self, t: int, granted_usage: float, capped: bool) -> Optional[str]:
        """Record execution; subclasses may return a departure outcome."""
        self._now = t
        self.granted_cpu_seconds += granted_usage
        if capped:
            self.capped_seconds += 1
        return None


class TransactionCounter:
    """Derives application transactions from retired instructions.

    ``transactions = instructions / cost`` where the per-transaction
    instruction cost wanders slowly (an AR(1) walk around its mean) and each
    reading carries small measurement noise.  The wander is what keeps the
    paper's Figure 2 correlation at 0.97 rather than 1.0.
    """

    def __init__(
        self,
        instructions_per_transaction: float,
        rng: np.random.Generator,
        cost_wander: float = 0.02,
        measurement_noise: float = 0.01,
    ):
        """Args:
            instructions_per_transaction: mean instruction cost of one
                application transaction.
            rng: noise source.
            cost_wander: stationary stddev (fractional) of the cost walk.
            measurement_noise: per-reading fractional noise.
        """
        if instructions_per_transaction <= 0:
            raise ValueError("instructions_per_transaction must be positive, "
                             f"got {instructions_per_transaction}")
        if cost_wander < 0 or measurement_noise < 0:
            raise ValueError("noise parameters must be >= 0")
        self.mean_cost = instructions_per_transaction
        self.rng = rng
        self.cost_wander = cost_wander
        self.measurement_noise = measurement_noise
        self._drift = 0.0

    def transactions_for(self, instructions: float) -> float:
        """Transactions completed by ``instructions`` retired instructions."""
        if instructions < 0:
            raise ValueError(f"instructions must be >= 0, got {instructions}")
        # AR(1): drift' = 0.9 drift + noise; stationary sigma = cost_wander.
        innovation_sigma = self.cost_wander * np.sqrt(1.0 - 0.9 ** 2)
        self._drift = 0.9 * self._drift + float(
            self.rng.normal(0.0, innovation_sigma))
        cost = self.mean_cost * (1.0 + self._drift)
        reading = instructions / cost
        if self.measurement_noise > 0.0:
            reading *= 1.0 + float(self.rng.normal(0.0, self.measurement_noise))
        return max(0.0, reading)
