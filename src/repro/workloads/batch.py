"""Batch workloads: throughput jobs, MapReduce workers, lame-duck behaviour.

The paper's batch tier supplies both the antagonists and two specific
behaviours its case studies document:

* **Case 5 (lame-duck mode):** "During normal execution, it has about 8
  active threads.  When it is hard-capped, the number of threads rapidly
  grows to around 80 [offloading work to others].  After the hard-capping
  stops, the thread count drops to 2 (a self-induced 'lame-duck mode') for
  tens of minutes before reverting to its normal 8 threads."
* **Case 6 (give-up-and-exit):** a MapReduce worker "survived the first
  hard-capping ... but during the second one it either quit or was terminated
  by the MapReduce master", preferring rescheduling over crawling.

Plus the Figure 2 substrate: a batch job whose measured transactions/second
tracks instructions/second with r ≈ 0.97.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.cluster.interference import ResourceProfile
from repro.cluster.job import Job, JobSpec
from repro.cluster.task import PriorityBand, SchedulingClass, Task
from repro.workloads.base import SyntheticWorkload, TransactionCounter
from repro.workloads.demand import DemandFn, constant, with_noise

__all__ = [
    "BatchWorkload",
    "LameDuckBehavior",
    "MapReduceWorker",
    "MapReduceCoordinator",
    "make_batch_job_spec",
    "make_mapreduce_job_spec",
]

#: Default shared-resource profile for a generic throughput batch task.
#: Deliberately moderate: ordinary batch work co-exists with services most
#: of the time (the paper: "severe resource interference between tasks is
#: relatively rare"); the heavy-pressure profiles live in
#: :mod:`repro.workloads.antagonists`.
_BATCH_PROFILE = ResourceProfile(
    cache_mib_per_cpu=1.2, membw_gbps_per_cpu=0.7,
    cache_sensitivity=0.5, membw_sensitivity=0.4, base_l3_mpki=2.5)


class BatchWorkload(SyntheticWorkload):
    """A throughput-oriented batch task with a transaction counter."""

    def __init__(
        self,
        rng: np.random.Generator,
        demand: DemandFn | None = None,
        base_cpi: float = 1.2,
        profile: ResourceProfile = _BATCH_PROFILE,
        instructions_per_transaction: float = 2.0e7,
        threads: int = 8,
    ):
        super().__init__(
            base_cpi=base_cpi,
            profile=profile,
            demand=demand or with_noise(constant(1.0), 0.08, rng),
            threads=threads,
        )
        self.transactions = TransactionCounter(instructions_per_transaction, rng)

    def transactions_for(self, instructions: float) -> float:
        """Application transactions completed by ``instructions`` instructions."""
        return self.transactions.transactions_for(instructions)


class _LameDuckState(enum.Enum):
    NORMAL = "normal"
    CAPPED = "capped"
    LAME_DUCK = "lame-duck"


class LameDuckBehavior:
    """Case 5's thread-count dynamics as a small state machine."""

    def __init__(self, normal_threads: int = 8, capped_threads: int = 80,
                 lameduck_threads: int = 2, lameduck_duration: int = 1800):
        """Args:
            normal_threads: steady-state worker threads.
            capped_threads: threads spawned while capped, to offload work.
            lameduck_threads: threads kept during post-cap lame-duck mode.
            lameduck_duration: seconds of lame-duck mode after a cap lifts.
        """
        for name, value in (("normal_threads", normal_threads),
                            ("capped_threads", capped_threads),
                            ("lameduck_threads", lameduck_threads)):
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if lameduck_duration < 0:
            raise ValueError(
                f"lameduck_duration must be >= 0, got {lameduck_duration}")
        self.normal_threads = normal_threads
        self.capped_threads = capped_threads
        self.lameduck_threads = lameduck_threads
        self.lameduck_duration = lameduck_duration
        self._state = _LameDuckState.NORMAL
        self._lameduck_until = -1

    def observe(self, t: int, capped: bool) -> None:
        """Advance the state machine for second ``t``."""
        if capped:
            self._state = _LameDuckState.CAPPED
        elif self._state is _LameDuckState.CAPPED:
            self._state = _LameDuckState.LAME_DUCK
            self._lameduck_until = t + self.lameduck_duration
        elif (self._state is _LameDuckState.LAME_DUCK
              and t >= self._lameduck_until):
            self._state = _LameDuckState.NORMAL

    def thread_count(self) -> int:
        """Threads alive in the current state."""
        if self._state is _LameDuckState.CAPPED:
            return self.capped_threads
        if self._state is _LameDuckState.LAME_DUCK:
            return self.lameduck_threads
        return self.normal_threads

    @property
    def state_name(self) -> str:
        """Current state, for logging and tests."""
        return self._state.value


class MapReduceWorker(BatchWorkload):
    """A MapReduce worker: lame-duck under capping, exits if capped too often.

    The worker tolerates ``give_up_episode - 1`` complete capping episodes;
    ``exit_delay`` seconds into episode number ``give_up_episode`` it exits
    (returns ``"exited"`` from :meth:`on_tick`), modelling case 6.  A worker
    also completes normally once it has burned ``work_cpu_seconds``.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        demand: DemandFn | None = None,
        work_cpu_seconds: float = float("inf"),
        give_up_episode: int = 2,
        exit_delay: int = 120,
        lame_duck: LameDuckBehavior | None = None,
        **kwargs,
    ):
        super().__init__(rng=rng, demand=demand, **kwargs)
        if give_up_episode < 1:
            raise ValueError(f"give_up_episode must be >= 1, got {give_up_episode}")
        if exit_delay < 0:
            raise ValueError(f"exit_delay must be >= 0, got {exit_delay}")
        self.work_cpu_seconds = work_cpu_seconds
        self.give_up_episode = give_up_episode
        self.exit_delay = exit_delay
        self.lame_duck = lame_duck or LameDuckBehavior()
        self._was_capped = False
        self.cap_episodes = 0
        self._episode_capped_seconds = 0

    def thread_count(self, t: int) -> int:
        """Thread count follows the lame-duck state machine."""
        return self.lame_duck.thread_count()

    def on_tick(self, t: int, granted_usage: float, capped: bool) -> Optional[str]:
        outcome = super().on_tick(t, granted_usage, capped)
        assert outcome is None  # SyntheticWorkload never departs
        self.lame_duck.observe(t, capped)
        if capped and not self._was_capped:
            self.cap_episodes += 1
            self._episode_capped_seconds = 0
        if capped:
            self._episode_capped_seconds += 1
            if (self.cap_episodes >= self.give_up_episode
                    and self._episode_capped_seconds > self.exit_delay):
                return "exited"
        self._was_capped = capped
        if self.granted_cpu_seconds >= self.work_cpu_seconds:
            return "completed"
        return None


class MapReduceCoordinator:
    """Job-level straggler handling, as the paper's Section 2 describes.

    "Although identifying laggards and starting up replacements for them in a
    timely fashion often improves performance, it typically does so at the
    cost of additional resources."  The coordinator watches per-worker
    progress and nominates stragglers for duplication; the owner decides what
    to do with them (the paper's point is precisely that duplication is a
    blunt instrument compared to fixing the interference).
    """

    def __init__(self, job: Job, straggler_fraction: float = 0.5):
        """Args:
            job: the MapReduce job whose workers to watch.
            straggler_fraction: a worker is a straggler when its progress is
                below this fraction of the median worker's progress.
        """
        if not 0.0 < straggler_fraction < 1.0:
            raise ValueError(
                f"straggler_fraction must be in (0, 1), got {straggler_fraction}")
        self.job = job
        self.straggler_fraction = straggler_fraction
        self.duplicated: set[str] = set()

    def progress(self) -> dict[str, float]:
        """CPU-seconds of progress per running worker."""
        return {
            task.name: task.workload.granted_cpu_seconds
            for task in self.job.running_tasks()
            if isinstance(task.workload, BatchWorkload)
        }

    def stragglers(self) -> list[Task]:
        """Running workers progressing far slower than the median."""
        progress = self.progress()
        if len(progress) < 3:
            return []
        median = float(np.median(list(progress.values())))
        if median <= 0.0:
            return []
        cutoff = median * self.straggler_fraction
        return [
            task for task in self.job.running_tasks()
            if progress.get(task.name, 0.0) < cutoff
        ]

    def nominate_duplicates(self) -> list[Task]:
        """Stragglers not yet nominated; marks them so each is returned once."""
        fresh = [t for t in self.stragglers() if t.name not in self.duplicated]
        self.duplicated.update(t.name for t in fresh)
        return fresh


def make_batch_job_spec(
    name: str,
    num_tasks: int,
    seed: int = 0,
    cpu_limit_per_task: float = 2.0,
    demand_level: float = 1.0,
    best_effort: bool = False,
    priority_band: PriorityBand = PriorityBand.NONPRODUCTION,
    instructions_per_transaction: float = 2.0e7,
) -> JobSpec:
    """A generic throughput batch job (the Figure 2 workload)."""

    def factory(index: int) -> BatchWorkload:
        rng = np.random.default_rng(np.random.SeedSequence((seed, index)))
        return BatchWorkload(
            rng=rng,
            demand=with_noise(constant(demand_level), 0.08, rng),
            instructions_per_transaction=instructions_per_transaction,
        )

    return JobSpec(
        name=name,
        num_tasks=num_tasks,
        scheduling_class=(SchedulingClass.BEST_EFFORT if best_effort
                          else SchedulingClass.BATCH),
        priority_band=priority_band,
        cpu_limit_per_task=cpu_limit_per_task,
        workload_factory=factory,
    )


def make_mapreduce_job_spec(
    name: str,
    num_workers: int,
    seed: int = 0,
    cpu_limit_per_task: float = 3.0,
    demand_level: float = 2.0,
    work_cpu_seconds: float = float("inf"),
    give_up_episode: int = 2,
    priority_band: PriorityBand = PriorityBand.NONPRODUCTION,
) -> JobSpec:
    """A MapReduce job whose workers lame-duck and eventually give up."""

    def factory(index: int) -> MapReduceWorker:
        rng = np.random.default_rng(np.random.SeedSequence((seed, index)))
        return MapReduceWorker(
            rng=rng,
            demand=with_noise(constant(demand_level), 0.1, rng),
            work_cpu_seconds=work_cpu_seconds,
            give_up_episode=give_up_episode,
        )

    return JobSpec(
        name=name,
        num_tasks=num_workers,
        scheduling_class=SchedulingClass.BATCH,
        priority_band=priority_band,
        cpu_limit_per_task=cpu_limit_per_task,
        workload_factory=factory,
    )
