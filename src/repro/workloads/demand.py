"""Composable CPU-demand functions.

A demand function maps simulation time (seconds) to desired CPU usage in
CPU-sec/sec.  Workloads are assembled from these small combinators; the case
studies each need a specific temporal shape (bursty antagonists, bimodal
self-inflicted victims, steady services) and these express them directly.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "DemandFn",
    "constant",
    "on_off",
    "phased",
    "ramp",
    "bimodal",
    "with_noise",
    "scaled",
]

#: Seconds -> CPU-sec/sec.
DemandFn = Callable[[int], float]


def constant(level: float) -> DemandFn:
    """Steady demand of ``level`` CPU-sec/sec."""
    if level < 0:
        raise ValueError(f"level must be >= 0, got {level}")
    return lambda t: level


def on_off(on_level: float, off_level: float, period: int,
           duty: float = 0.5, phase: int = 0) -> DemandFn:
    """Square-wave demand: ``on_level`` for ``duty`` of each ``period``.

    This is the canonical bursty-antagonist shape: CPU usage spikes that a
    victim's CPI spikes will correlate with.

    Args:
        on_level: demand while on.
        off_level: demand while off.
        period: cycle length in seconds.
        duty: fraction of the period spent on (0..1).
        phase: offset in seconds (lets many tasks desynchronise).
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if not 0.0 <= duty <= 1.0:
        raise ValueError(f"duty must be in [0, 1], got {duty}")
    if on_level < 0 or off_level < 0:
        raise ValueError("levels must be >= 0")
    on_seconds = duty * period

    def fn(t: int) -> float:
        return on_level if ((t + phase) % period) < on_seconds else off_level

    return fn


def phased(segments: Sequence[tuple[int, float]], cycle: bool = True) -> DemandFn:
    """Piecewise-constant demand from ``(duration_seconds, level)`` segments.

    Args:
        segments: the schedule, in order.
        cycle: repeat the schedule forever if True; hold the final level
            otherwise.
    """
    if not segments:
        raise ValueError("need at least one segment")
    for duration, level in segments:
        if duration < 1:
            raise ValueError(f"segment duration must be >= 1, got {duration}")
        if level < 0:
            raise ValueError(f"segment level must be >= 0, got {level}")
    total = sum(d for d, _ in segments)

    def fn(t: int) -> float:
        if cycle:
            t = t % total
        elif t >= total:
            return segments[-1][1]
        elapsed = 0
        for duration, level in segments:
            elapsed += duration
            if t < elapsed:
                return level
        return segments[-1][1]

    return fn


def ramp(start_level: float, end_level: float, duration: int) -> DemandFn:
    """Linear ramp from ``start_level`` to ``end_level`` over ``duration`` s."""
    if duration < 1:
        raise ValueError(f"duration must be >= 1, got {duration}")
    if start_level < 0 or end_level < 0:
        raise ValueError("levels must be >= 0")

    def fn(t: int) -> float:
        if t >= duration:
            return end_level
        return start_level + (end_level - start_level) * (t / duration)

    return fn


def bimodal(low_level: float, high_level: float, period: int,
            low_fraction: float = 0.5, phase: int = 0) -> DemandFn:
    """Case 3's shape: the task alternates between near-idle and active.

    When near-idle its CPI rises (cold caches) without any antagonist; the
    0.25 CPU-sec/sec usage gate exists to filter exactly this false alarm.
    """
    return on_off(on_level=low_level, off_level=high_level,
                  period=period, duty=low_fraction, phase=phase)


def with_noise(base: DemandFn, sigma: float,
               rng: np.random.Generator) -> DemandFn:
    """Multiply a demand function by log-normal noise, clipped at zero.

    Each call draws fresh noise, so call once per simulated second (which is
    what the machine tick does).
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0.0:
        return base

    _exp = np.exp
    draw = rng.standard_normal

    def fn(t: int) -> float:
        # sigma * standard_normal() is bit-identical to normal(0.0, sigma)
        # (same ziggurat draw, and adding loc 0.0 is the identity), and
        # ``d if d > 0.0 else 0.0`` matches max(0.0, d) for every float
        # including NaN.  This runs once per task per simulated second, so
        # it is one of the hottest expressions in the whole simulator.
        d = base(t) * float(_exp(sigma * draw()))
        return d if d > 0.0 else 0.0

    return fn


def scaled(base: DemandFn, factor_fn: Callable[[int], float]) -> DemandFn:
    """Modulate ``base`` by a time-varying factor (e.g. a diurnal pattern)."""

    def fn(t: int) -> float:
        return max(0.0, base(t) * factor_fn(t))

    return fn
