"""Composable CPU-demand functions, with declarative spec forms.

A demand function maps simulation time (seconds) to desired CPU usage in
CPU-sec/sec.  Workloads are assembled from these small combinators; the case
studies each need a specific temporal shape (bursty antagonists, bimodal
self-inflicted victims, steady services) and these express them directly.

Every combinator returns an ordinary callable *and* attaches a frozen
``spec`` attribute describing it declaratively (:class:`ConstantSpec`,
:class:`OnOffSpec`, ...).  The vectorized demand engine
(:mod:`repro.cluster.demandplane`) compiles those specs into
struct-of-arrays programs so a whole machine's demand for one tick is a
handful of numpy ufunc passes; a demand function without a recognised spec
(a hand-written lambda, an unsupported composition) simply makes its
machine fall back to calling the closures — the closures here remain the
scalar reference semantics either way.

Spec contract: a spec must describe the closure *exactly* — same value,
bit for bit, for every ``t`` — and a callable carrying a ``spec`` must be
pure (its output determined by ``t`` and the spec alone).  The one
exception is :class:`NoiseSpec`, which names the generator its closure
draws from so the compiled form can consume the identical RNG stream.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

import numpy as np

__all__ = [
    "DemandFn",
    "DemandSpec",
    "ConstantSpec",
    "OnOffSpec",
    "PhasedSpec",
    "RampSpec",
    "ScaledSpec",
    "NoiseSpec",
    "demand_spec",
    "constant",
    "on_off",
    "phased",
    "ramp",
    "bimodal",
    "with_noise",
    "scaled",
]

#: Seconds -> CPU-sec/sec.
DemandFn = Callable[[int], float]


# -- spec forms ---------------------------------------------------------------


@dataclass(frozen=True)
class ConstantSpec:
    """Spec of :func:`constant`."""

    level: float


@dataclass(frozen=True)
class OnOffSpec:
    """Spec of :func:`on_off` (and :func:`bimodal`, which delegates to it)."""

    on_level: float
    off_level: float
    period: int
    on_seconds: float   # duty * period, precomputed exactly as the closure does
    phase: int


@dataclass(frozen=True)
class PhasedSpec:
    """Spec of :func:`phased`: cumulative segment boundaries and levels."""

    boundaries: tuple[int, ...]  # cumulative end time of each segment
    levels: tuple[float, ...]
    total: int
    cycle: bool


@dataclass(frozen=True)
class RampSpec:
    """Spec of :func:`ramp`."""

    start_level: float
    end_level: float
    duration: int


@dataclass(frozen=True)
class ScaledSpec:
    """Spec of :func:`scaled`.

    ``factor`` is the factor callable itself; it is compilable only when it
    carries its own ``spec`` attribute (e.g.
    :class:`~repro.workloads.diurnal.DiurnalPattern`), which asserts it is
    pure so tasks whose factors have equal specs may share one evaluation.
    """

    base: Optional["DemandSpec"]
    factor: Callable[[int], float]


@dataclass(frozen=True)
class NoiseSpec:
    """Spec of :func:`with_noise`: log-normal noise from a named generator.

    ``stream`` is a one-slot mutable holder shared with the closure.  It
    starts as ``[None]`` (the closure draws scalars straight from ``rng``);
    the demand engine may install an iterator yielding the generator's
    scalar stream in bulk-drawn chunks (bit-identical values, cheaper per
    draw).  Once installed, *every* consumer — compiled program or closure,
    whichever runs — takes draws from that iterator, so the stream position
    stays exact across engine switches and table recompiles.
    """

    base: Optional["DemandSpec"]
    sigma: float
    rng: np.random.Generator
    stream: list = field(default=None, compare=False, repr=False)


DemandSpec = Union[ConstantSpec, OnOffSpec, PhasedSpec, RampSpec,
                   ScaledSpec, NoiseSpec]


def demand_spec(fn: DemandFn) -> Optional[DemandSpec]:
    """The declarative spec of ``fn``, or ``None`` for opaque callables."""
    return getattr(fn, "spec", None)


# -- combinators --------------------------------------------------------------


def constant(level: float) -> DemandFn:
    """Steady demand of ``level`` CPU-sec/sec."""
    if level < 0:
        raise ValueError(f"level must be >= 0, got {level}")

    def fn(t: int) -> float:
        return level

    fn.spec = ConstantSpec(level)
    return fn


def on_off(on_level: float, off_level: float, period: int,
           duty: float = 0.5, phase: int = 0) -> DemandFn:
    """Square-wave demand: ``on_level`` for ``duty`` of each ``period``.

    This is the canonical bursty-antagonist shape: CPU usage spikes that a
    victim's CPI spikes will correlate with.

    Args:
        on_level: demand while on.
        off_level: demand while off.
        period: cycle length in seconds.
        duty: fraction of the period spent on (0..1).
        phase: offset in seconds (lets many tasks desynchronise).
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if not 0.0 <= duty <= 1.0:
        raise ValueError(f"duty must be in [0, 1], got {duty}")
    if on_level < 0 or off_level < 0:
        raise ValueError("levels must be >= 0")
    on_seconds = duty * period

    def fn(t: int) -> float:
        return on_level if ((t + phase) % period) < on_seconds else off_level

    fn.spec = OnOffSpec(on_level, off_level, period, on_seconds, phase)
    return fn


def phased(segments: Sequence[tuple[int, float]], cycle: bool = True) -> DemandFn:
    """Piecewise-constant demand from ``(duration_seconds, level)`` segments.

    Segment lookup is a binary search over precomputed cumulative
    boundaries, so long schedules (diurnal traces with hundreds of
    segments) cost O(log n) per call instead of a linear scan.

    Args:
        segments: the schedule, in order.
        cycle: repeat the schedule forever if True; hold the final level
            otherwise.
    """
    if not segments:
        raise ValueError("need at least one segment")
    for duration, level in segments:
        if duration < 1:
            raise ValueError(f"segment duration must be >= 1, got {duration}")
        if level < 0:
            raise ValueError(f"segment level must be >= 0, got {level}")
    boundaries: list[int] = []
    levels: list[float] = []
    elapsed = 0
    for duration, level in segments:
        elapsed += duration
        boundaries.append(elapsed)
        levels.append(level)
    total = elapsed
    last_level = levels[-1]

    def fn(t: int) -> float:
        if cycle:
            t = t % total
        elif t >= total:
            return last_level
        return levels[bisect_right(boundaries, t)]

    fn.spec = PhasedSpec(tuple(boundaries), tuple(levels), total, cycle)
    return fn


def ramp(start_level: float, end_level: float, duration: int) -> DemandFn:
    """Linear ramp from ``start_level`` to ``end_level`` over ``duration`` s."""
    if duration < 1:
        raise ValueError(f"duration must be >= 1, got {duration}")
    if start_level < 0 or end_level < 0:
        raise ValueError("levels must be >= 0")

    def fn(t: int) -> float:
        if t >= duration:
            return end_level
        return start_level + (end_level - start_level) * (t / duration)

    fn.spec = RampSpec(start_level, end_level, duration)
    return fn


def bimodal(low_level: float, high_level: float, period: int,
            low_fraction: float = 0.5, phase: int = 0) -> DemandFn:
    """Case 3's shape: the task alternates between near-idle and active.

    When near-idle its CPI rises (cold caches) without any antagonist; the
    0.25 CPU-sec/sec usage gate exists to filter exactly this false alarm.
    """
    return on_off(on_level=low_level, off_level=high_level,
                  period=period, duty=low_fraction, phase=phase)


def with_noise(base: DemandFn, sigma: float,
               rng: np.random.Generator) -> DemandFn:
    """Multiply a demand function by log-normal noise, clipped at zero.

    Each call draws fresh noise, so call once per simulated second (which is
    what the machine tick does).
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0.0:
        return base

    _exp = np.exp
    draw = rng.standard_normal
    stream: list = [None]

    def fn(t: int) -> float:
        # sigma * standard_normal() is bit-identical to normal(0.0, sigma)
        # (same ziggurat draw, and adding loc 0.0 is the identity), and
        # ``d if d > 0.0 else 0.0`` matches max(0.0, d) for every float
        # including NaN.  This runs once per task per simulated second, so
        # it is one of the hottest expressions in the whole simulator.
        # When the demand engine has installed a chunked stream for this
        # generator (see NoiseSpec.stream), draws must come from it so the
        # stream position survives engine switches and table recompiles.
        it = stream[0]
        d = base(t) * float(_exp(sigma * (draw() if it is None else next(it))))
        return d if d > 0.0 else 0.0

    fn.spec = NoiseSpec(demand_spec(base), sigma, rng, stream)
    return fn


def scaled(base: DemandFn, factor_fn: Callable[[int], float]) -> DemandFn:
    """Modulate ``base`` by a time-varying factor (e.g. a diurnal pattern)."""

    def fn(t: int) -> float:
        # The same NaN-safe clamp as with_noise and the machine tick: a
        # factor that misbehaves (NaN, -inf) yields zero demand, never a
        # NaN that would poison the allocation arithmetic downstream.
        d = base(t) * factor_fn(t)
        return d if d > 0.0 else 0.0

    fn.spec = ScaledSpec(demand_spec(base), factor_fn)
    return fn
