"""Diurnal (time-of-day) load patterns.

Figure 5 shows the mean CPI of a web-search job tracking a daily cycle with a
~4% coefficient of variation: as user traffic rises the instruction mix
shifts and machines warm up, and CPI drifts up with it.  We model the load
side with a smooth sinusoid-plus-harmonic curve peaking in the evening, and
let workloads couple their demand (and, weakly, their CPI) to it.
"""

from __future__ import annotations

import math

from repro.cluster.simulation import SECONDS_PER_DAY

__all__ = ["DiurnalPattern"]


class DiurnalPattern:
    """A smooth daily multiplier around 1.0.

    The curve is ``1 + amplitude * s(t)`` where ``s`` is a unit-amplitude
    day-periodic shape with its trough in the early morning and peak in the
    evening, plus an optional weekend damping (Figure 5's Saturday dips).
    """

    def __init__(self, amplitude: float = 0.25, peak_hour: float = 20.0,
                 weekend_damping: float = 0.0):
        """Args:
            amplitude: peak deviation from 1.0 (0.25 -> swings 0.75..1.25).
            peak_hour: local hour of daily maximum (0..24).
            weekend_damping: fraction by which days 5 and 6 of each week are
                scaled down (0 = no weekend effect).
        """
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if not 0.0 <= peak_hour < 24.0:
            raise ValueError(f"peak_hour must be in [0, 24), got {peak_hour}")
        if not 0.0 <= weekend_damping < 1.0:
            raise ValueError(
                f"weekend_damping must be in [0, 1), got {weekend_damping}")
        self.amplitude = amplitude
        self.peak_hour = peak_hour
        self.weekend_damping = weekend_damping
        # Purity declaration for the vectorized demand engine: two patterns
        # with equal specs produce identical outputs for every t, so tasks
        # sharing a spec can share one evaluation per tick (keeping the
        # math.cos calls scalar and therefore bit-identical).
        self.spec = ("diurnal", amplitude, peak_hour, weekend_damping)

    def __call__(self, t: int) -> float:
        """The load multiplier at simulation time ``t`` seconds."""
        day_fraction = (t % SECONDS_PER_DAY) / SECONDS_PER_DAY
        peak_fraction = self.peak_hour / 24.0
        angle = 2.0 * math.pi * (day_fraction - peak_fraction)
        # Fundamental plus a small second harmonic for a realistic sharp
        # evening peak and long overnight trough.
        shape = math.cos(angle) + 0.25 * math.cos(2.0 * angle)
        value = 1.0 + self.amplitude * shape / 1.25
        day_index = (t // SECONDS_PER_DAY) % 7
        if self.weekend_damping > 0.0 and day_index in (5, 6):
            value *= 1.0 - self.weekend_damping
        return max(0.0, value)

    def daily_extremes(self) -> tuple[float, float]:
        """(min, max) multiplier over one weekday, by dense evaluation."""
        values = [self(t) for t in range(0, SECONDS_PER_DAY, 60)]
        return min(values), max(values)
