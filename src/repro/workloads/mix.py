"""Cluster workload mixes with Google-trace statistics.

Section 2 describes the cluster CPI2 ran in, citing the public trace
analysis [Reiss et al., SoCC 2012]: "In one typical cluster, 7% of jobs run
at production priority and use about 30% of the available CPUs, while
non-production priority jobs consume about another 10%", and "96% of the
tasks we run are part of a job with at least 10 tasks, and 87% ... with 100
or more tasks".

:class:`ClusterMix` generates a randomized set of job specs whose aggregate
statistics land on those numbers, so fleet-scale experiments (occupancy,
incident rates, soaks) run against a defensible population rather than a
hand-picked one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.job import JobSpec
from repro.cluster.task import PriorityBand, SchedulingClass
from repro.workloads.antagonists import AntagonistKind, make_antagonist_job_spec
from repro.workloads.batch import make_batch_job_spec
from repro.workloads.services import make_service_job_spec
from repro.workloads.websearch import SearchTier, make_websearch_job_spec

__all__ = ["ClusterMix", "MixStatistics"]


@dataclass(frozen=True)
class MixStatistics:
    """Aggregate properties of a generated mix (for validation/reporting)."""

    num_jobs: int
    num_tasks: int
    production_job_fraction: float
    production_cpu_fraction: float
    nonproduction_cpu_fraction: float
    tasks_in_jobs_of_10_plus: float
    tasks_in_jobs_of_100_plus: float


@dataclass
class ClusterMix:
    """A generator of job populations with trace-like statistics.

    Attributes:
        total_cpu: the fleet's CPU capacity the mix is sized against
            (cores x machines).
        production_job_fraction: share of *jobs* at production priority
            (the trace's ~7%).
        production_cpu_target: share of ``total_cpu`` reserved by
            production jobs (~30%).
        nonproduction_cpu_target: share reserved by non-production jobs
            (~10%).
        antagonist_fraction: share of non-production *jobs* that are
            heavy-pressure antagonists (the rest are well-behaved batch).
    """

    total_cpu: float
    production_job_fraction: float = 0.07
    production_cpu_target: float = 0.30
    nonproduction_cpu_target: float = 0.10
    antagonist_fraction: float = 0.10
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.total_cpu <= 0:
            raise ValueError(f"total_cpu must be positive, got {self.total_cpu}")
        for name in ("production_job_fraction", "production_cpu_target",
                     "nonproduction_cpu_target", "antagonist_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._rng = np.random.default_rng(
            np.random.SeedSequence((0x617, self.seed)))

    # -- job-size distribution ---------------------------------------------------

    def _job_sizes(self, total_tasks_budget: int) -> list[int]:
        """Job task-counts hitting the paper's 96% / 87% size quantiles.

        Mostly large jobs by task mass: most *jobs* stay small while most
        *tasks* belong to big jobs — the trace's defining skew.  The paper's
        exact quantiles (96% of tasks in 10+-task jobs, 87% in 100+) come
        from a 12k-machine cell whose biggest jobs dwarf anything a scaled
        fleet can host; at our scale the generator lands within a few points
        of them.
        """
        sizes: list[int] = []
        remaining = total_tasks_budget
        while remaining > 0:
            roll = self._rng.random()
            if roll < 0.5:
                size = int(self._rng.integers(1, 10))       # many tiny jobs
            elif roll < 0.7:
                size = int(self._rng.integers(10, 100))
            else:
                size = int(self._rng.integers(100, 600))    # the task mass
            size = min(size, remaining) or 1
            sizes.append(size)
            remaining -= size
        return sizes

    # -- generation ---------------------------------------------------------------

    def generate(self) -> list[JobSpec]:
        """One randomized job population matching the mix's targets."""
        specs: list[JobSpec] = []
        production_cpu = self.total_cpu * self.production_cpu_target
        nonprod_cpu = self.total_cpu * self.nonproduction_cpu_target

        # Production: latency-sensitive services sized to ~30% of CPU.
        # Tasks reserve ~1.5 CPU each.
        prod_tasks = max(10, int(production_cpu / 1.5))
        prod_sizes = self._job_sizes(prod_tasks)
        for i, size in enumerate(prod_sizes):
            kind = self._rng.random()
            if kind < 0.4:
                specs.append(make_websearch_job_spec(
                    f"prod-search-{i}", SearchTier.LEAF, num_tasks=size,
                    seed=int(self._rng.integers(2**31)),
                    cpu_limit_per_task=1.5))
            else:
                specs.append(make_service_job_spec(
                    f"prod-svc-{i}", num_tasks=size,
                    seed=int(self._rng.integers(2**31)),
                    base_cpi=float(self._rng.uniform(0.8, 1.8)),
                    demand_level=float(self._rng.uniform(0.5, 1.0)),
                    cpu_limit_per_task=1.5,
                    task_cpi_spread=0.1))

        # Non-production: batch (and a few antagonists) to ~10% of CPU.
        nonprod_tasks = max(5, int(nonprod_cpu / 1.5))
        nonprod_sizes = self._job_sizes(nonprod_tasks)
        kinds = list(AntagonistKind)
        for i, size in enumerate(nonprod_sizes):
            if self._rng.random() < self.antagonist_fraction:
                specs.append(make_antagonist_job_spec(
                    f"nonprod-ant-{i}",
                    kinds[int(self._rng.integers(len(kinds)))],
                    num_tasks=max(1, size // 4),
                    seed=int(self._rng.integers(2**31)),
                    cpu_limit_per_task=6.0))
            else:
                specs.append(make_batch_job_spec(
                    f"nonprod-batch-{i}", num_tasks=size,
                    seed=int(self._rng.integers(2**31)),
                    demand_level=float(self._rng.uniform(0.3, 1.2)),
                    cpu_limit_per_task=1.5,
                    best_effort=bool(self._rng.random() < 0.3)))

        # The job-count split drives the 7% figure: the real trace is full
        # of 1-task best-effort jobs, so pad with those until production
        # jobs are the target share (bounded — at small scale the three
        # targets compete and the job-count one yields first).
        production_jobs = sum(
            1 for s in specs if s.priority_band is PriorityBand.PRODUCTION)
        padding_budget = 30 * max(1, production_jobs)
        while (production_jobs / max(1, len(specs))
               > self.production_job_fraction and padding_budget > 0):
            padding_budget -= 1
            specs.append(make_batch_job_spec(
                f"nonprod-tiny-{len(specs)}",
                num_tasks=int(self._rng.integers(1, 4)),
                seed=int(self._rng.integers(2**31)),
                demand_level=float(self._rng.uniform(0.05, 0.3)),
                cpu_limit_per_task=0.5, best_effort=True))
        return specs

    # -- validation -----------------------------------------------------------------

    @staticmethod
    def statistics(specs: list[JobSpec],
                   total_cpu: float) -> MixStatistics:
        """Aggregate statistics of a generated population."""
        if not specs:
            raise ValueError("empty job population")
        num_tasks = sum(s.num_tasks for s in specs)
        production = [s for s in specs
                      if s.priority_band is PriorityBand.PRODUCTION]
        prod_cpu = sum(s.num_tasks * s.cpu_limit_per_task for s in production)
        nonprod_cpu = sum(s.num_tasks * s.cpu_limit_per_task for s in specs
                          if s.priority_band is PriorityBand.NONPRODUCTION)
        in_10 = sum(s.num_tasks for s in specs if s.num_tasks >= 10)
        in_100 = sum(s.num_tasks for s in specs if s.num_tasks >= 100)
        return MixStatistics(
            num_jobs=len(specs),
            num_tasks=num_tasks,
            production_job_fraction=len(production) / len(specs),
            production_cpu_fraction=prod_cpu / total_cpu,
            nonproduction_cpu_fraction=nonprod_cpu / total_cpu,
            tasks_in_jobs_of_10_plus=in_10 / num_tasks,
            tasks_in_jobs_of_100_plus=in_100 / num_tasks,
        )
