"""Generic latency-sensitive services.

Case 1's suspect table names a zoo of latency-sensitive co-tenants — content
digitizing, an image front-end, a BigTable tablet server, a storage server —
and case 3 turns on a front-end web service whose own bimodal CPU usage made
its CPI swing with no antagonist at all.  These helpers build such services:
steady or bimodal latency-sensitive tasks with tunable sensitivity, used to
populate machines realistically in the case-study benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.interference import ResourceProfile
from repro.cluster.job import JobSpec
from repro.cluster.task import PriorityBand, SchedulingClass
from repro.workloads.base import SyntheticWorkload
from repro.workloads.demand import bimodal, constant, with_noise

__all__ = ["make_service_workload", "make_service_job_spec",
           "make_bimodal_frontend_spec", "make_gc_service_spec"]

#: A typical latency-sensitive service: light pressure, real sensitivity —
#: services feel antagonists far more than they squeeze each other.
_SERVICE_PROFILE = ResourceProfile(
    cache_mib_per_cpu=0.8, membw_gbps_per_cpu=0.5,
    cache_sensitivity=0.8, membw_sensitivity=0.6, base_l3_mpki=2.5)


def make_service_workload(
    rng: np.random.Generator,
    base_cpi: float = 1.0,
    demand_level: float = 1.0,
    demand_noise: float = 0.06,
    profile: ResourceProfile = _SERVICE_PROFILE,
    threads: int = 16,
) -> SyntheticWorkload:
    """A steady latency-sensitive service task."""
    return SyntheticWorkload(
        base_cpi=base_cpi,
        profile=profile,
        demand=with_noise(constant(demand_level), demand_noise, rng),
        threads=threads,
    )


def make_service_job_spec(
    name: str,
    num_tasks: int,
    seed: int = 0,
    base_cpi: float = 1.0,
    demand_level: float = 1.0,
    cpu_limit_per_task: float = 2.0,
    priority_band: PriorityBand = PriorityBand.PRODUCTION,
    protection_eligible: bool | None = None,
    task_cpi_spread: float = 0.0,
) -> JobSpec:
    """A generic latency-sensitive service job.

    ``task_cpi_spread`` gives each task a slightly different base CPI
    (log-normal, sigma = spread): tasks in a job are similar, not identical
    (Table 1's per-job stddevs are 10-20% of the mean).
    """

    def factory(index: int) -> SyntheticWorkload:
        rng = np.random.default_rng(np.random.SeedSequence((seed, index)))
        task_cpi = base_cpi
        if task_cpi_spread > 0:
            task_cpi *= float(np.exp(rng.normal(0.0, task_cpi_spread)))
        return make_service_workload(rng, base_cpi=task_cpi,
                                     demand_level=demand_level)

    return JobSpec(
        name=name,
        num_tasks=num_tasks,
        scheduling_class=SchedulingClass.LATENCY_SENSITIVE,
        priority_band=priority_band,
        cpu_limit_per_task=cpu_limit_per_task,
        workload_factory=factory,
        protection_eligible=protection_eligible,
    )


def make_bimodal_frontend_spec(
    name: str,
    num_tasks: int,
    seed: int = 0,
    low_usage: float = 0.05,
    high_usage: float = 0.35,
    period: int = 600,
    cold_start_penalty: float = 4.0,
    cpu_limit_per_task: float = 1.0,
) -> JobSpec:
    """Case 3's front-end: bimodal CPU usage whose CPI swings are self-inflicted.

    During the low-usage phase the task's caches go cold and its CPI rises to
    several times normal — with no antagonist anywhere.  CPI2's 0.25
    CPU-sec/sec minimum-usage gate exists to suppress exactly this alarm.
    """
    profile = ResourceProfile(
        cache_mib_per_cpu=1.5, membw_gbps_per_cpu=0.8,
        cache_sensitivity=0.7, membw_sensitivity=0.5, base_l3_mpki=2.0,
        cold_start_penalty=cold_start_penalty)

    def factory(index: int) -> SyntheticWorkload:
        rng = np.random.default_rng(np.random.SeedSequence((seed, index)))
        phase = int(rng.integers(period))
        return SyntheticWorkload(
            base_cpi=1.4,
            profile=profile,
            demand=with_noise(
                bimodal(low_usage, high_usage, period=period, phase=phase),
                0.08, rng),
            threads=12,
        )

    return JobSpec(
        name=name,
        num_tasks=num_tasks,
        scheduling_class=SchedulingClass.LATENCY_SENSITIVE,
        priority_band=PriorityBand.PRODUCTION,
        cpu_limit_per_task=cpu_limit_per_task,
        workload_factory=factory,
    )


def make_gc_service_spec(
    name: str,
    num_tasks: int,
    seed: int = 0,
    base_cpi: float = 1.1,
    gc_period: int = 437,
    gc_duration: int = 20,
    gc_cpi_multiplier: float = 2.5,
    demand_level: float = 1.0,
    cpu_limit_per_task: float = 2.0,
) -> JobSpec:
    """A garbage-collected service: brief periodic CPI spikes, no antagonist.

    Managed-runtime services stall for collection every few minutes; during
    a pause the task burns cycles walking the heap (terrible CPI) while
    serving nothing.  (The default period is deliberately not a multiple of
    the 60-second sampling cycle, so pauses drift across the sampling
    window instead of aliasing with it.)  A window that overlaps a
    pause looks exactly like interference — which is precisely the kind of
    isolated outlier the paper's 3-violations-in-5-minutes rule exists to
    absorb.  Tasks get independent phases, so pauses do not align across the
    job and the job-level spec stays tight.
    """
    if gc_duration >= gc_period:
        raise ValueError("gc_duration must be < gc_period "
                         f"({gc_duration} >= {gc_period})")
    if gc_cpi_multiplier < 1.0:
        raise ValueError(
            f"gc_cpi_multiplier must be >= 1, got {gc_cpi_multiplier}")

    profile = ResourceProfile(
        cache_mib_per_cpu=1.0, membw_gbps_per_cpu=0.6,
        cache_sensitivity=0.8, membw_sensitivity=0.6, base_l3_mpki=3.0)

    def factory(index: int) -> SyntheticWorkload:
        rng = np.random.default_rng(np.random.SeedSequence((seed, index)))
        phase = int(rng.integers(gc_period))

        def gc_modulation(t: int) -> float:
            in_pause = ((t + phase) % gc_period) < gc_duration
            return gc_cpi_multiplier if in_pause else 1.0

        return SyntheticWorkload(
            base_cpi=base_cpi,
            profile=profile,
            demand=with_noise(constant(demand_level), 0.06, rng),
            threads=24,
            cpi_modulation=gc_modulation,
        )

    return JobSpec(
        name=name,
        num_tasks=num_tasks,
        scheduling_class=SchedulingClass.LATENCY_SENSITIVE,
        priority_band=PriorityBand.PRODUCTION,
        cpu_limit_per_task=cpu_limit_per_task,
        workload_factory=factory,
    )
