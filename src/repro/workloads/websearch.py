"""Web-search workloads: the paper's flagship latency-sensitive application.

Section 3 validates CPI against a three-tier search service:

* **leaf** nodes do the heavy scoring work — their request latency tracks
  their CPI closely (Figure 3: r = 0.97 job-wide; Figure 4a: r ≈ 0.75 for
  individual 5-minute task samples);
* **intermediate** mixers aggregate leaf responses — still compute-heavy
  (Figure 4b: r ≈ 0.68);
* the **root** node's latency "is largely determined by the response time of
  other nodes, not the root node itself", so its latency correlates poorly
  with its own CPI (Figure 4c).

:class:`LatencyModel` encodes that tier-dependent coupling: latency is a
CPU-service-time component proportional to the node's CPI ratio plus a
fan-out component (waiting for the slowest of many children) that dominates
at the root.  Demand follows a diurnal pattern (Figure 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cluster.interference import ResourceProfile
from repro.cluster.job import JobSpec
from repro.cluster.task import PriorityBand, SchedulingClass
from repro.workloads.base import SyntheticWorkload
from repro.workloads.demand import constant, scaled, with_noise
from repro.workloads.diurnal import DiurnalPattern

__all__ = ["SearchTier", "LatencyModel", "WebSearchWorkload",
           "make_websearch_job_spec"]


class SearchTier(enum.Enum):
    """Position in the search fan-out tree."""

    LEAF = "leaf"
    INTERMEDIATE = "intermediate"
    ROOT = "root"


@dataclass(frozen=True)
class _TierTraits:
    """Per-tier workload characteristics."""

    base_cpi: float
    cpu_demand: float
    cpu_coupling: float     # fraction of latency that scales with own CPI
    fanout_sigma: float     # lognormal sigma of the wait-for-children component
    base_latency_ms: float
    profile: ResourceProfile


_TIER_TRAITS: dict[SearchTier, _TierTraits] = {
    SearchTier.LEAF: _TierTraits(
        base_cpi=1.45,
        cpu_demand=1.6,
        cpu_coupling=0.85,
        fanout_sigma=0.10,
        base_latency_ms=15.0,
        profile=ResourceProfile(
            cache_mib_per_cpu=1.0, membw_gbps_per_cpu=0.6,
            cache_sensitivity=0.9, membw_sensitivity=0.7, base_l3_mpki=2.0),
    ),
    SearchTier.INTERMEDIATE: _TierTraits(
        base_cpi=1.1,
        cpu_demand=1.0,
        cpu_coupling=0.78,
        fanout_sigma=0.10,
        base_latency_ms=25.0,
        profile=ResourceProfile(
            cache_mib_per_cpu=0.9, membw_gbps_per_cpu=0.5,
            cache_sensitivity=0.8, membw_sensitivity=0.6, base_l3_mpki=1.5),
    ),
    SearchTier.ROOT: _TierTraits(
        base_cpi=0.9,
        cpu_demand=0.6,
        cpu_coupling=0.08,
        fanout_sigma=0.35,
        base_latency_ms=60.0,
        profile=ResourceProfile(
            cache_mib_per_cpu=1.0, membw_gbps_per_cpu=0.5,
            cache_sensitivity=0.6, membw_sensitivity=0.5, base_l3_mpki=1.0),
    ),
}


class LatencyModel:
    """Request latency as a function of the node's own (normalised) CPI.

    ``latency = base * (cpu_coupling * cpi_ratio + (1 - cpu_coupling) * F)``
    where ``cpi_ratio`` is measured CPI over the job's baseline CPI and ``F``
    is a lognormal fan-out factor modelling the wait for the slowest child.
    Leaf nodes have high coupling and a tight fan-out term; the root is the
    reverse, reproducing Figure 4's contrast.
    """

    def __init__(self, tier: SearchTier, rng: np.random.Generator):
        self.tier = tier
        self.rng = rng
        self._traits = _TIER_TRAITS[tier]

    def request_latency_ms(self, cpi_ratio: float) -> float:
        """Latency for a window whose measured CPI was ``cpi_ratio`` x baseline.

        Raises:
            ValueError: if ``cpi_ratio`` is not positive.
        """
        if cpi_ratio <= 0:
            raise ValueError(f"cpi_ratio must be positive, got {cpi_ratio}")
        traits = self._traits
        fanout = float(np.exp(self.rng.normal(0.0, traits.fanout_sigma)))
        mix = traits.cpu_coupling * cpi_ratio + (1.0 - traits.cpu_coupling) * fanout
        return traits.base_latency_ms * mix


class WebSearchWorkload(SyntheticWorkload):
    """One search node: diurnal CPU demand plus a latency model."""

    def __init__(self, tier: SearchTier, rng: np.random.Generator,
                 diurnal: DiurnalPattern | None = None,
                 demand_scale: float = 1.0,
                 demand_noise: float = 0.05,
                 cpi_diurnal_amplitude: float = 0.04):
        """Args:
            tier: which search tier this node is.
            rng: per-task noise source.
            diurnal: the load pattern (a default evening-peaked one if None).
            demand_scale: multiplier on the tier's nominal CPU demand.
            demand_noise: per-second fractional demand noise.
            cpi_diurnal_amplitude: amplitude of instruction-mix CPI drift
                tied to the diurnal cycle (Figure 5's ~4% CV).
        """
        traits = _TIER_TRAITS[tier]
        pattern = diurnal or DiurnalPattern(amplitude=0.25)
        demand = with_noise(
            scaled(constant(traits.cpu_demand * demand_scale), pattern),
            demand_noise, rng)

        def cpi_drift(t: int) -> float:
            # CPI follows load with a reduced amplitude: heavier traffic means
            # a slightly different (worse-locality) instruction mix.
            return 1.0 + cpi_diurnal_amplitude * (pattern(t) - 1.0) / max(
                pattern.amplitude, 1e-9)

        super().__init__(
            base_cpi=traits.base_cpi,
            profile=traits.profile,
            demand=demand,
            threads=32 if tier is SearchTier.LEAF else 16,
            cpi_modulation=cpi_drift if cpi_diurnal_amplitude > 0 else None,
        )
        self.tier = tier
        self.latency_model = LatencyModel(tier, rng)

    def baseline_cpi(self) -> float:
        """The tier's nominal contention-free CPI (for latency normalisation)."""
        return _TIER_TRAITS[self.tier].base_cpi


def make_websearch_job_spec(
    name: str,
    tier: SearchTier,
    num_tasks: int,
    seed: int = 0,
    cpu_limit_per_task: float = 2.0,
    priority_band: PriorityBand = PriorityBand.PRODUCTION,
    diurnal: DiurnalPattern | None = None,
    demand_scale: float = 1.0,
) -> JobSpec:
    """A :class:`JobSpec` for one tier of a search service.

    Each task gets its own rng (seeded from ``seed`` and its index) so noise
    is independent across tasks, as it is across real processes.
    """

    def factory(index: int) -> WebSearchWorkload:
        rng = np.random.default_rng(np.random.SeedSequence((seed, index)))
        return WebSearchWorkload(tier=tier, rng=rng, diurnal=diurnal,
                                 demand_scale=demand_scale)

    return JobSpec(
        name=name,
        num_tasks=num_tasks,
        scheduling_class=SchedulingClass.LATENCY_SENSITIVE,
        priority_band=priority_band,
        cpu_limit_per_task=cpu_limit_per_task,
        workload_factory=factory,
    )
