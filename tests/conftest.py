"""Shared fixtures for the CPI2 test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.platform import get_platform
from repro.core.config import CpiConfig
from repro.obs import set_default_observability
from repro.records import CpiSample, CpiSpec
from repro.testing import make_quiet_machine


@pytest.fixture(autouse=True)
def _fresh_default_observability():
    """Each test sees a pristine process-default Observability.

    CLI entry points swap the process-wide default (and ``soak`` enables
    the telemetry plane on it); without this reset those flags leak into
    later tests' scenario builds — e.g. a sharded run whose coordinator
    replica suddenly expects telemetry scrapes that its workers (which
    always build fresh defaults) never send.
    """
    set_default_observability(None)
    yield
    set_default_observability(None)


@pytest.fixture
def platform():
    """The reference platform used throughout the tests."""
    return get_platform("westmere-2.6")


@pytest.fixture
def machine():
    """A quiet (noise-free) machine on the reference platform."""
    return make_quiet_machine()


@pytest.fixture
def rng():
    """A seeded generator for tests that need controlled randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def config():
    """The paper's default CPI2 configuration."""
    return CpiConfig()


def make_sample(jobname="job", platforminfo="westmere-2.6", t=60,
                cpu_usage=1.0, cpi=1.0, taskname=None) -> CpiSample:
    """A CpiSample with convenient defaults (timestamp given in seconds)."""
    return CpiSample(
        jobname=jobname,
        platforminfo=platforminfo,
        timestamp=t * 1_000_000,
        cpu_usage=cpu_usage,
        cpi=cpi,
        taskname=taskname if taskname is not None else f"{jobname}/0",
    )


def make_spec(jobname="job", platforminfo="westmere-2.6", num_samples=1000,
              cpu_usage_mean=1.0, cpi_mean=1.0, cpi_stddev=0.1) -> CpiSpec:
    """A CpiSpec with convenient defaults."""
    return CpiSpec(
        jobname=jobname,
        platforminfo=platforminfo,
        num_samples=num_samples,
        cpu_usage_mean=cpu_usage_mean,
        cpi_mean=cpi_mean,
        cpi_stddev=cpi_stddev,
    )
