"""Integration-grade unit tests for repro.core.agent (the per-machine agent)."""

import pytest

from repro.cluster.task import SchedulingClass
from repro.core.agent import MachineAgent
from repro.core.config import CpiConfig
from repro.core.policy import PolicyAction
from repro.perf.sampler import CpiSampler, SamplerConfig
from repro.records import SpecKey
from repro.testing import (
    NOISY_NEIGHBOR_PROFILE,
    SENSITIVE_PROFILE,
    make_quiet_machine,
    make_scripted_job,
)
from tests.conftest import make_spec


#: Fast config: 5s windows every 15s so tests stay quick, with paper
#: thresholds otherwise.
FAST = CpiConfig(sampling_duration=5, sampling_period=15,
                 anomaly_window=120, correlation_window=300)


def build_rig(config=FAST, with_antagonist=True, antagonist_script=None):
    """A machine + sampler + agent with a sensitive victim and an on/off
    antagonist whose bursts align with sampling windows."""
    machine = make_quiet_machine()
    sampler = CpiSampler(machine, SamplerConfig(config.sampling_duration,
                                                config.sampling_period))
    agent = MachineAgent(machine, config)

    victim = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                               base_cpi=1.0, profile=SENSITIVE_PROFILE)
    machine.place(victim.tasks[0])
    jobs = {"victim": victim}
    if with_antagonist:
        script = antagonist_script or [6.0]
        antagonist = make_scripted_job(
            "ant", script, cpu_limit=8.0,
            scheduling_class=SchedulingClass.BATCH,
            profile=NOISY_NEIGHBOR_PROFILE)
        machine.place(antagonist.tasks[0])
        jobs["ant"] = antagonist
    agent.update_specs({
        SpecKey("victim", machine.platform.name): make_spec(
            jobname="victim", cpi_mean=1.0, cpi_stddev=0.1),
    })
    return machine, sampler, agent, jobs


def run_rig(machine, sampler, agent, seconds):
    for t in range(seconds):
        machine.tick(t)
        agent.tick(t)
        samples = sampler.tick(t)
        if samples:
            agent.ingest_samples(t, samples)


class TestDetectionToThrottle:
    def test_antagonist_detected_and_capped(self):
        machine, sampler, agent, jobs = build_rig()
        run_rig(machine, sampler, agent, 180)
        assert agent.anomalies_seen >= 1
        assert len(agent.incidents) >= 1
        incident = agent.incidents[0]
        assert incident.decision.action is PolicyAction.THROTTLE
        assert incident.decision.target.name == "ant/0"
        assert incident.decision.score.correlation >= 0.35
        assert jobs["ant"].tasks[0].cgroup.is_capped(179)

    def test_victim_recovers_and_followup_closes(self):
        config = FAST.with_overrides(hardcap_duration=60)
        machine, sampler, agent, jobs = build_rig(config)
        run_rig(machine, sampler, agent, 300)
        closed = [i for i in agent.incidents if i.recovered is not None]
        assert closed
        assert closed[0].recovered is True
        assert closed[0].relative_cpi < 0.9

    def test_incident_sink_called_on_followup(self):
        sunk = []
        config = FAST.with_overrides(hardcap_duration=60)
        machine = make_quiet_machine()
        sampler = CpiSampler(machine, SamplerConfig(5, 15))
        agent = MachineAgent(machine, config, incident_sink=sunk.append)
        victim = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                                   base_cpi=1.0, profile=SENSITIVE_PROFILE)
        antagonist = make_scripted_job(
            "ant", [6.0], cpu_limit=8.0,
            scheduling_class=SchedulingClass.BATCH,
            profile=NOISY_NEIGHBOR_PROFILE)
        machine.place(victim.tasks[0])
        machine.place(antagonist.tasks[0])
        agent.update_specs({SpecKey("victim", machine.platform.name):
                            make_spec(jobname="victim", cpi_mean=1.0,
                                      cpi_stddev=0.1)})
        run_rig(machine, sampler, agent, 300)
        assert sunk
        assert all(i.recovered is not None
                   for i in sunk
                   if i.decision.action is PolicyAction.THROTTLE)


class TestNoFalsePositives:
    def test_no_spec_no_anomaly(self):
        machine, sampler, agent, _ = build_rig()
        agent.update_specs({})
        run_rig(machine, sampler, agent, 180)
        assert agent.anomalies_seen == 0

    def test_healthy_victim_no_incident(self):
        machine, sampler, agent, _ = build_rig(with_antagonist=False)
        run_rig(machine, sampler, agent, 180)
        assert agent.incidents == []

    def test_no_duplicate_incident_during_followup(self):
        config = FAST.with_overrides(hardcap_duration=600)
        machine, sampler, agent, _ = build_rig(config)
        run_rig(machine, sampler, agent, 400)
        throttles = [i for i in agent.incidents
                     if i.decision.action is PolicyAction.THROTTLE]
        # With the cap never expiring inside the run, the victim has an
        # amelioration in flight: exactly one throttle incident.
        assert len(throttles) == 1


class TestSuspectSeries:
    def test_own_jobmates_never_suspected(self):
        config = FAST
        machine = make_quiet_machine()
        sampler = CpiSampler(machine, SamplerConfig(5, 15))
        agent = MachineAgent(machine, config)
        victim_job = make_scripted_job("victim", [1.0], num_tasks=2,
                                       cpu_limit=2.0, base_cpi=1.0,
                                       profile=SENSITIVE_PROFILE)
        for task in victim_job:
            machine.place(task)
        antagonist = make_scripted_job(
            "ant", [6.0], cpu_limit=8.0,
            scheduling_class=SchedulingClass.BATCH,
            profile=NOISY_NEIGHBOR_PROFILE)
        machine.place(antagonist.tasks[0])
        agent.update_specs({SpecKey("victim", machine.platform.name):
                            make_spec(jobname="victim", cpi_mean=1.0,
                                      cpi_stddev=0.1)})
        run_rig(machine, sampler, agent, 200)
        assert agent.incidents
        for incident in agent.incidents:
            suspect_names = {s.taskname for s in incident.suspects}
            assert "victim/0" not in suspect_names
            assert "victim/1" not in suspect_names

    def test_rate_limit_one_analysis_per_batch(self):
        # Two victims anomalous in the same ingest batch: only one analysis.
        config = FAST
        machine = make_quiet_machine()
        sampler = CpiSampler(machine, SamplerConfig(5, 15))
        agent = MachineAgent(machine, config)
        for name in ("v1", "v2"):
            job = make_scripted_job(name, [1.0], cpu_limit=2.0, base_cpi=1.0,
                                    profile=SENSITIVE_PROFILE)
            machine.place(job.tasks[0])
        antagonist = make_scripted_job(
            "ant", [6.0], cpu_limit=8.0,
            scheduling_class=SchedulingClass.BATCH,
            profile=NOISY_NEIGHBOR_PROFILE)
        machine.place(antagonist.tasks[0])
        specs = {}
        for name in ("v1", "v2"):
            specs[SpecKey(name, machine.platform.name)] = make_spec(
                jobname=name, cpi_mean=1.0, cpi_stddev=0.1)
        agent.update_specs(specs)
        run_rig(machine, sampler, agent, 65)
        # Both cross 3 violations at the same window close; rate limiting
        # permits only one identification attempt per second.
        times = [i.time_seconds for i in agent.incidents]
        assert len(times) == len(set(times))


class TestBookkeeping:
    def test_forget_task_clears_state(self):
        machine, sampler, agent, _ = build_rig()
        run_rig(machine, sampler, agent, 60)
        agent.forget_task("victim/0")
        assert agent.detector.violations_for("victim/0") == 0

    def test_spec_for_helper(self):
        machine, _, agent, _ = build_rig()
        assert agent.spec_for("victim") is not None
        assert agent.spec_for("ghost") is None


class TestPerPlatformSpecs:
    def test_same_job_different_thresholds_per_platform(self):
        """CPI2 computes specs per job x CPU type: the same job must be
        judged against its own platform's threshold on each machine."""
        from repro.cluster.machine import Machine
        from repro.cluster.platform import get_platform

        config = FAST
        west = Machine("west", get_platform("westmere-2.6"),
                       cpi_noise_sigma=0.0)
        sandy = Machine("sandy", get_platform("sandybridge-2.9"),
                        cpi_noise_sigma=0.0)
        job = make_scripted_job("svc", [1.0], num_tasks=2, cpu_limit=2.0,
                                base_cpi=1.0, profile=SENSITIVE_PROFILE)
        west.place(job.tasks[0])
        sandy.place(job.tasks[1])

        agents = {}
        specs = {
            SpecKey("svc", "westmere-2.6"): make_spec(
                jobname="svc", platforminfo="westmere-2.6",
                cpi_mean=1.0, cpi_stddev=0.1),
            SpecKey("svc", "sandybridge-2.9"): make_spec(
                jobname="svc", platforminfo="sandybridge-2.9",
                cpi_mean=0.88, cpi_stddev=0.088),
        }
        for machine in (west, sandy):
            agent = MachineAgent(machine, config)
            agent.update_specs(specs)
            agents[machine.name] = agent
        # Each agent resolves its own platform's spec.
        assert agents["west"].spec_for("svc").cpi_mean == 1.0
        assert agents["sandy"].spec_for("svc").cpi_mean == pytest.approx(0.88)

    def test_missing_platform_spec_no_detection(self):
        from repro.cluster.machine import Machine
        from repro.cluster.platform import get_platform

        machine = Machine("neh", get_platform("nehalem-2.3"),
                          cpi_noise_sigma=0.0)
        sampler = CpiSampler(machine, SamplerConfig(5, 15))
        agent = MachineAgent(machine, FAST)
        victim = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                                   base_cpi=1.0, profile=SENSITIVE_PROFILE)
        antagonist = make_scripted_job(
            "ant", [6.0], cpu_limit=8.0,
            scheduling_class=SchedulingClass.BATCH,
            profile=NOISY_NEIGHBOR_PROFILE)
        machine.place(victim.tasks[0])
        machine.place(antagonist.tasks[0])
        # Spec exists for the job, but on a *different* platform.
        agent.update_specs({SpecKey("victim", "westmere-2.6"): make_spec(
            jobname="victim", cpi_mean=1.0, cpi_stddev=0.1)})
        run_rig(machine, sampler, agent, 120)
        assert agent.anomalies_seen == 0
        assert agent.detector.samples_skipped_no_spec > 0
