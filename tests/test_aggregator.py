"""Unit tests for repro.core.aggregator (CPI spec learning)."""

import numpy as np
import pytest

from repro.core.aggregator import CpiAggregator
from repro.core.config import CpiConfig
from repro.records import SpecKey
from tests.conftest import make_sample, make_spec


def small_gate_config(**kwargs):
    """Gates low enough for small unit-test populations."""
    defaults = dict(min_tasks_for_spec=2, min_samples_per_task=3)
    defaults.update(kwargs)
    return CpiConfig(**defaults)


def feed(aggregator, jobname="job", num_tasks=5, samples_per_task=10,
         cpi=1.5, usage=1.0, platform="westmere-2.6"):
    for task_index in range(num_tasks):
        for i in range(samples_per_task):
            aggregator.ingest(make_sample(
                jobname=jobname, platforminfo=platform, t=60 * (i + 1),
                cpu_usage=usage, cpi=cpi,
                taskname=f"{jobname}/{task_index}"))


class TestIngestionAndStats:
    def test_mean_and_stddev(self):
        agg = CpiAggregator(small_gate_config())
        rng = np.random.default_rng(3)
        values = rng.normal(1.8, 0.16, size=600)
        for i, cpi in enumerate(values):
            agg.ingest(make_sample(t=60 * i, cpi=max(0.01, float(cpi)),
                                   taskname=f"job/{i % 5}"))
        specs = agg.recompute(now=0)
        spec = specs[SpecKey("job", "westmere-2.6")]
        assert spec.cpi_mean == pytest.approx(1.8, abs=0.03)
        assert spec.cpi_stddev == pytest.approx(0.16, abs=0.03)
        assert spec.num_samples == 600

    def test_cpu_usage_mean(self):
        agg = CpiAggregator(small_gate_config())
        feed(agg, usage=2.0)
        spec = agg.recompute(0)[SpecKey("job", "westmere-2.6")]
        assert spec.cpu_usage_mean == pytest.approx(2.0)

    def test_per_platform_separation(self):
        # "CPI2 does separate CPI calculations for each platform."
        agg = CpiAggregator(small_gate_config())
        feed(agg, cpi=1.0, platform="westmere-2.6")
        feed(agg, cpi=1.3, platform="nehalem-2.3")
        specs = agg.recompute(0)
        assert specs[SpecKey("job", "westmere-2.6")].cpi_mean == pytest.approx(1.0)
        assert specs[SpecKey("job", "nehalem-2.3")].cpi_mean == pytest.approx(1.3)

    def test_total_samples_counter(self):
        agg = CpiAggregator(small_gate_config())
        feed(agg, num_tasks=2, samples_per_task=4)
        assert agg.total_samples_ingested == 8


class TestRobustnessGates:
    def test_too_few_tasks_not_published(self):
        agg = CpiAggregator(CpiConfig(min_tasks_for_spec=5,
                                      min_samples_per_task=1))
        feed(agg, num_tasks=4, samples_per_task=10)
        assert agg.recompute(0) == {}

    def test_too_few_samples_not_published(self):
        agg = CpiAggregator(CpiConfig(min_tasks_for_spec=2,
                                      min_samples_per_task=100))
        feed(agg, num_tasks=5, samples_per_task=50)
        assert agg.recompute(0) == {}

    def test_gate_failure_keeps_previous_spec(self):
        agg = CpiAggregator(small_gate_config())
        previous = make_spec(cpi_mean=1.5)
        agg.set_spec(previous)
        feed(agg, num_tasks=1, samples_per_task=1)  # below the gates
        specs = agg.recompute(0)
        assert specs[previous.key()] == previous


class TestAgeWeighting:
    def test_blend_pulls_toward_fresh_data(self):
        agg = CpiAggregator(small_gate_config())
        agg.set_spec(make_spec(cpi_mean=1.0, cpi_stddev=0.1, num_samples=1000))
        feed(agg, cpi=2.0)
        spec = agg.recompute(0)[SpecKey("job", "westmere-2.6")]
        # (0.9 * 1.0 + 1.0 * 2.0) / 1.9
        assert spec.cpi_mean == pytest.approx((0.9 + 2.0) / 1.9)

    def test_history_decays_geometrically(self):
        agg = CpiAggregator(small_gate_config())
        agg.set_spec(make_spec(cpi_mean=1.0))
        mean = 1.0
        for day in range(5):
            feed(agg, cpi=2.0)
            mean = (0.9 * mean + 2.0) / 1.9
            spec = agg.recompute(day)[SpecKey("job", "westmere-2.6")]
            assert spec.cpi_mean == pytest.approx(mean)
        assert spec.cpi_mean > 1.9  # converging to the new level

    def test_zero_age_weight_forgets_history(self):
        agg = CpiAggregator(small_gate_config(history_age_weight=0.0))
        agg.set_spec(make_spec(cpi_mean=1.0))
        feed(agg, cpi=2.0)
        spec = agg.recompute(0)[SpecKey("job", "westmere-2.6")]
        assert spec.cpi_mean == pytest.approx(2.0)

    def test_num_samples_blends(self):
        agg = CpiAggregator(small_gate_config())
        agg.set_spec(make_spec(num_samples=1000))
        feed(agg, num_tasks=5, samples_per_task=10)  # 50 fresh
        spec = agg.recompute(0)[SpecKey("job", "westmere-2.6")]
        assert spec.num_samples == int(0.9 * 1000) + 50


class TestRefreshSchedule:
    def test_maybe_recompute_first_call_always_fires(self):
        agg = CpiAggregator(small_gate_config())
        assert agg.maybe_recompute(0) is not None

    def test_maybe_recompute_respects_period(self):
        agg = CpiAggregator(small_gate_config(spec_refresh_period=3600))
        agg.maybe_recompute(0)
        assert agg.maybe_recompute(3599) is None
        assert agg.maybe_recompute(3600) is not None

    def test_period_data_cleared_after_recompute(self):
        agg = CpiAggregator(small_gate_config())
        feed(agg, cpi=2.0)
        agg.recompute(0)
        # No new data: specs unchanged on next recompute.
        before = agg.specs()
        agg.recompute(1)
        assert agg.specs() == before


class TestSpecAccess:
    def test_spec_for(self):
        agg = CpiAggregator(small_gate_config())
        agg.set_spec(make_spec(jobname="search"))
        assert agg.spec_for("search", "westmere-2.6") is not None
        assert agg.spec_for("search", "unknown") is None
        assert agg.spec_for("nope", "westmere-2.6") is None

    def test_specs_returns_copy(self):
        agg = CpiAggregator(small_gate_config())
        agg.set_spec(make_spec())
        specs = agg.specs()
        specs.clear()
        assert agg.specs()  # unchanged
