"""Tests for the declarative SLO alert engine.

Covers the expression language (counter increases, gauge reads, guarded
ratios), the fire/resolve lifecycle with for-durations, event emission
through the structured logger, and the docs lint: every instrument a
shipped rule reads must be documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.alerts import (DEFAULT_ALERT_RULES, AlertEngine, AlertRule,
                              CounterIncrease, GaugeValue, Ratio)
from repro.obs.events import StructuredLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesDB

DOCS = Path(__file__).parent.parent / "docs" / "observability.md"


def _scrape(tsdb, registry, t):
    tsdb.scrape_registry(t, registry)


# -- expressions --------------------------------------------------------------


def test_counter_increase_expression():
    registry = MetricsRegistry()
    counter = registry.counter("samples_quarantined")
    tsdb = TimeSeriesDB()
    expr = CounterIncrease("samples_quarantined", window=120)
    _scrape(tsdb, registry, 10)
    assert expr.evaluate(tsdb, 10) == 0.0
    counter.inc(8)
    _scrape(tsdb, registry, 70)
    counter.inc(2)
    _scrape(tsdb, registry, 130)
    assert expr.evaluate(tsdb, 130) == 10.0   # both deltas inside window
    assert expr.evaluate(tsdb, 190) == 2.0    # the older one aged out
    assert expr.describe() == "increase(samples_quarantined[120s])"
    assert expr.instruments() == frozenset({"samples_quarantined"})


def test_gauge_value_expression():
    registry = MetricsRegistry()
    registry.gauge("degraded_agents").set(3)
    tsdb = TimeSeriesDB()
    expr = GaugeValue("degraded_agents")
    assert expr.evaluate(tsdb, 0) is None     # nothing scraped yet
    _scrape(tsdb, registry, 10)
    assert expr.evaluate(tsdb, 10) == 3.0
    assert expr.describe() == "degraded_agents"


def test_ratio_denominator_floor():
    registry = MetricsRegistry()
    dropped = registry.counter("analyses_dropped", reason="stale_spec")
    detected = registry.counter("anomalies_detected")
    tsdb = TimeSeriesDB()
    expr = Ratio(
        CounterIncrease("analyses_dropped", 600,
                        labels={"reason": "stale_spec"}),
        CounterIncrease("anomalies_detected", 600),
        min_denominator=5.0)
    dropped.inc(3)
    detected.inc(4)
    _scrape(tsdb, registry, 10)
    assert expr.evaluate(tsdb, 10) is None    # below the floor: no signal
    detected.inc(2)
    _scrape(tsdb, registry, 70)
    assert expr.evaluate(tsdb, 70) == 0.5     # 3 dropped / 6 detected
    assert "increase(analyses_dropped{reason=stale_spec}[600s])" \
        in expr.describe()
    assert expr.instruments() == frozenset(
        {"analyses_dropped", "anomalies_detected"})


# -- rule lifecycle -----------------------------------------------------------


def _burst_setup():
    registry = MetricsRegistry()
    counter = registry.counter("samples_quarantined")
    tsdb = TimeSeriesDB()
    rule = AlertRule("quarantine_spike",
                     CounterIncrease("samples_quarantined", 300),
                     ">", 50, for_seconds=60, severity="critical")
    return registry, counter, tsdb, AlertEngine([rule])


def test_rule_fires_after_for_duration_and_resolves():
    registry, counter, tsdb, engine = _burst_setup()
    _scrape(tsdb, registry, 10)
    engine.evaluate(tsdb, 10)
    counter.inc(80)                            # breach begins at t=70
    _scrape(tsdb, registry, 70)
    assert engine.evaluate(tsdb, 70) == []     # held 0s < for 60s: pending
    _scrape(tsdb, registry, 130)
    fired = engine.evaluate(tsdb, 130)         # held 60s: fires
    assert [r["event"] for r in fired] == ["alert_fired"]
    assert fired[0]["rule"] == "quarantine_spike"
    assert fired[0]["value"] == 80.0
    assert engine.active() == ["quarantine_spike"]
    # The 300s window drains; the next scrapes see the burst age out.
    _scrape(tsdb, registry, 190)
    _scrape(tsdb, registry, 250)
    _scrape(tsdb, registry, 310)
    _scrape(tsdb, registry, 370)
    resolved = [r for t in (190, 250, 310, 370)
                for r in engine.evaluate(tsdb, t)]
    assert [r["event"] for r in resolved] == ["alert_resolved"]
    assert resolved[0]["t"] == 370
    assert resolved[0]["active_for"] == 240
    assert engine.active() == []
    assert engine.fired_counts() == {"quarantine_spike": 1}


def test_breach_shorter_than_for_duration_never_fires():
    registry, counter, tsdb, engine = _burst_setup()
    counter.inc(80)
    _scrape(tsdb, registry, 10)
    engine.evaluate(tsdb, 10)                  # pending
    _scrape(tsdb, registry, 370)               # burst aged out of the window
    assert engine.evaluate(tsdb, 370) == []
    assert engine.history == []


def test_transitions_emit_structured_events():
    captured: list[dict] = []
    logger = StructuredLogger(clock=lambda: 0)
    logger.add_sink(captured.append)
    registry = MetricsRegistry()
    registry.counter("resend_queue_overflow").inc()
    tsdb = TimeSeriesDB()
    engine = AlertEngine(
        [AlertRule("resend_overflow",
                   CounterIncrease("resend_queue_overflow", 300),
                   ">", 0, severity="critical")],
        events=logger)
    _scrape(tsdb, registry, 10)
    engine.evaluate(tsdb, 10)
    assert [e["event"] for e in captured] == ["alert_fired"]
    assert captured[0]["rule"] == "resend_overflow"
    assert captured[0]["severity"] == "critical"


def test_dump_lines_round_trip():
    registry, counter, tsdb, engine = _burst_setup()
    counter.inc(80)
    _scrape(tsdb, registry, 10)
    _scrape(tsdb, registry, 70)
    engine.evaluate(tsdb, 10)
    engine.evaluate(tsdb, 70)
    lines = engine.dump_lines()
    assert len(lines) == 1
    assert json.loads(lines[0])["event"] == "alert_fired"


def test_engine_rejects_duplicate_rule_names():
    rule = AlertRule("dup", GaugeValue("g"), ">", 1)
    with pytest.raises(ValueError, match="duplicate"):
        AlertEngine([rule, rule])


def test_rule_rejects_unknown_operator():
    with pytest.raises(ValueError, match="comparison"):
        AlertRule("bad", GaugeValue("g"), "!=", 1)


def test_no_data_never_breaches():
    engine = AlertEngine()
    assert engine.evaluate(TimeSeriesDB(), 10) == []
    assert engine.history == []


# -- the shipped catalogue ----------------------------------------------------


def test_default_rule_names_are_unique_and_described():
    names = [rule.name for rule in DEFAULT_ALERT_RULES]
    assert len(set(names)) == len(names)
    for rule in DEFAULT_ALERT_RULES:
        assert rule.description, rule.name
        assert rule.condition()


def test_every_alert_instrument_is_documented():
    """Docs lint: the observability guide must cover each referenced metric.

    CI runs this test standalone; keep the failure message actionable.
    """
    text = DOCS.read_text(encoding="utf-8")
    missing = sorted(name for name in AlertEngine().instruments()
                     if name not in text)
    assert not missing, (
        f"alert rules reference instruments missing from {DOCS}: {missing} "
        f"— add them to the metrics/alert catalogue")


def test_every_alert_rule_is_documented():
    text = DOCS.read_text(encoding="utf-8")
    missing = sorted(rule.name for rule in DEFAULT_ALERT_RULES
                     if rule.name not in text)
    assert not missing, (
        f"alert rules missing from the catalogue in {DOCS}: {missing}")
