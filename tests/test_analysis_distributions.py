"""Unit tests for repro.analysis.distributions (Figure 7's machinery)."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.analysis.distributions import (
    CANDIDATE_FAMILIES,
    best_fit,
    fit_all_candidates,
    fit_distribution,
)


@pytest.fixture(scope="module")
def gev_samples():
    """Samples from the paper's reported fit: GEV(1.73, 0.133, -0.0534)."""
    rng = np.random.default_rng(7)
    # scipy's c = -xi
    return sps.genextreme(0.0534, loc=1.73, scale=0.133).rvs(20000, random_state=rng)


@pytest.fixture(scope="module")
def normal_samples():
    rng = np.random.default_rng(8)
    return rng.normal(1.8, 0.16, size=20000)


class TestFitDistribution:
    def test_normal_recovers_parameters(self, normal_samples):
        fit = fit_distribution(normal_samples, "normal")
        assert fit.family == "normal"
        assert fit.location == pytest.approx(1.8, abs=0.01)
        assert fit.scale == pytest.approx(0.16, abs=0.01)
        assert fit.shape is None

    def test_gev_recovers_paper_parameters(self, gev_samples):
        fit = fit_distribution(gev_samples, "gev")
        assert fit.location == pytest.approx(1.73, abs=0.02)
        assert fit.scale == pytest.approx(0.133, abs=0.02)
        # Paper sign convention: xi = -0.0534 (bounded right tail).
        assert fit.shape == pytest.approx(-0.0534, abs=0.05)

    def test_unknown_family_raises(self, normal_samples):
        with pytest.raises(ValueError, match="unknown family"):
            fit_distribution(normal_samples, "cauchy")

    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError, match="at least 8"):
            fit_distribution([1.0, 2.0], "normal")

    def test_nonfinite_samples_raise(self):
        with pytest.raises(ValueError, match="non-finite"):
            fit_distribution([1.0] * 10 + [np.nan], "normal")

    def test_lognormal_rejects_nonpositive(self):
        samples = [-1.0] + [1.0] * 20
        with pytest.raises(ValueError, match="positive"):
            fit_distribution(samples, "lognormal")

    def test_gamma_rejects_nonpositive(self):
        samples = [0.0] + [1.0] * 20
        with pytest.raises(ValueError, match="positive"):
            fit_distribution(samples, "gamma")

    def test_aic_penalises_parameters(self, normal_samples):
        normal = fit_distribution(normal_samples, "normal")
        # AIC = 2k - 2LL; same data, so comparing k for identical LL
        assert normal.aic == pytest.approx(2 * 2 - 2 * normal.log_likelihood)

    def test_frozen_roundtrip(self, gev_samples):
        fit = fit_distribution(gev_samples, "gev")
        frozen = fit.frozen()
        # The frozen distribution must reproduce the fitted parameters.
        assert frozen.mean() == pytest.approx(np.mean(gev_samples), rel=0.02)

    def test_sf_is_probability(self, normal_samples):
        fit = fit_distribution(normal_samples, "normal")
        assert 0.0 <= fit.sf(2.0) <= 1.0
        assert fit.sf(-100.0) == pytest.approx(1.0)


class TestFitAllAndBest:
    def test_all_families_attempted(self, gev_samples):
        fits = fit_all_candidates(gev_samples)
        assert set(fits) == set(CANDIDATE_FAMILIES)

    def test_gev_wins_on_skewed_cpi_data(self, gev_samples):
        # The paper's headline claim for Figure 7: GEV fits the CPI
        # distribution better than normal, log-normal and gamma.
        winner = best_fit(gev_samples)
        assert winner.family == "gev"

    def test_normal_wins_on_gaussian_data(self, normal_samples):
        fits = fit_all_candidates(normal_samples)
        # Normal should at least beat gamma and lognormal on symmetric data;
        # GEV nests near-normal shapes so it may tie, but must not win by a
        # meaningful margin.
        assert fits["normal"].ks_statistic <= fits["gamma"].ks_statistic + 1e-3
        assert fits["normal"].ks_statistic <= fits["lognormal"].ks_statistic + 1e-3

    def test_ks_statistic_small_for_true_family(self, gev_samples):
        fit = fit_distribution(gev_samples, "gev")
        assert fit.ks_statistic < 0.02
