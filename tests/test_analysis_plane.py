"""Golden-parity tests for the vectorized analysis plane.

The matrix identification engine, the batch outlier detector, the columnar
task windows, and the parallel trial runner must all be **bit-identical**
to their scalar references: same sample streams, same incidents, same
suspect rankings, same counters.  Floats are compared via ``float.hex()``
so "close enough" can never creep in, mirroring ``test_tick_parity.py``
for the simulation plane.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cgroup import USAGE_HISTORY_SECONDS, Cgroup
from repro.core.config import CpiConfig
from repro.core.correlation import rank_suspects
from repro.core.identify import (ANALYSIS_ENGINE_ENV, rank_cotenant_suspects,
                                 rank_suspects_matrix,
                                 resolve_analysis_engine,
                                 suspect_usage_matrix)
from repro.core.outlier import OutlierDetector
from repro.core.window import WINDOW_CAPACITY, ColumnarWindow
from repro.experiments.scenarios import demo_scenario
from tests.conftest import make_sample, make_spec


def _hex(x) -> str:
    return float(x).hex()


# ---------------------------------------------------------------------------
# Engine selection


class TestResolveAnalysisEngine:
    def test_defaults_to_vector(self, monkeypatch):
        monkeypatch.delenv(ANALYSIS_ENGINE_ENV, raising=False)
        assert resolve_analysis_engine() == "vector"

    def test_environment_selects(self, monkeypatch):
        monkeypatch.setenv(ANALYSIS_ENGINE_ENV, "scalar")
        assert resolve_analysis_engine() == "scalar"

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ANALYSIS_ENGINE_ENV, "scalar")
        assert resolve_analysis_engine("vector") == "vector"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown analysis engine"):
            resolve_analysis_engine("simd")


# ---------------------------------------------------------------------------
# Columnar task windows


class TestColumnarWindow:
    def _fill(self, n, start_t=60):
        window = ColumnarWindow("job/0")
        originals = []
        for i in range(n):
            sample = make_sample(t=start_t + 60 * i, cpu_usage=0.5 + i * 0.01,
                                 cpi=1.0 + i * 0.001, taskname="job/0")
            window.append_sample(sample)
            originals.append(sample)
        return window, originals

    def test_samples_round_trip_field_equal(self):
        window, originals = self._fill(10)
        assert window.samples == originals

    def test_eviction_keeps_newest_capacity_samples(self):
        n = WINDOW_CAPACITY + 17
        window, originals = self._fill(n)
        assert len(window) == WINDOW_CAPACITY
        assert window.samples == originals[-WINDOW_CAPACITY:]

    def test_compaction_past_buffer_end(self):
        # Append enough to wrap the 2x-capacity buffers several times.
        n = WINDOW_CAPACITY * 5 + 3
        window, originals = self._fill(n)
        assert window.samples == originals[-WINDOW_CAPACITY:]

    def test_views_match_sample_fields(self):
        window, originals = self._fill(8)
        assert window.timestamps_us.tolist() == [s.timestamp
                                                 for s in originals]
        assert window.timestamps_sec.tolist() == [
            int(s.timestamp_seconds) for s in originals]
        assert [_hex(u) for u in window.cpu_usage.tolist()] == [
            _hex(s.cpu_usage) for s in originals]
        assert [_hex(c) for c in window.cpi.tolist()] == [
            _hex(s.cpi) for s in originals]

    def test_from_samples_round_trip(self):
        _window, originals = self._fill(12)
        rebuilt = ColumnarWindow.from_samples("job/0", iter(originals))
        assert rebuilt.samples == originals


# ---------------------------------------------------------------------------
# Cgroup ring ledger


class TestUsageWindowView:
    def _charged(self, n, start=0):
        cgroup = Cgroup("job/0", 4.0)
        rng = np.random.default_rng(7)
        for i in range(n):
            cgroup.charge(start + i, float(rng.uniform(0.0, 3.0)))
        return cgroup

    def _assert_view_matches_deque(self, cgroup, start, end, duration=10):
        view = cgroup.usage_window_view(start, end)
        assert view is not None
        for t in range(start + duration, end + 1, duration):
            total = 0.0
            for u in view[t - duration - start:t - start].tolist():
                total += u
            assert _hex(total / duration) == _hex(
                cgroup.usage_between(t - duration, t))

    def test_view_matches_usage_between(self):
        cgroup = self._charged(120)
        self._assert_view_matches_deque(cgroup, 40, 120)

    def test_view_matches_after_ring_wrap(self):
        n = USAGE_HISTORY_SECONDS + 250
        cgroup = self._charged(n)
        self._assert_view_matches_deque(cgroup, n - 300, n)

    def test_window_beyond_history_reads_zero(self):
        cgroup = self._charged(50)
        view = cgroup.usage_window_view(-30, 50)
        assert view is not None
        assert (view[:30] == 0.0).all()
        assert _hex(sum(view[:40].tolist()) / 40) == _hex(
            cgroup.usage_between(-30, 10))

    def test_never_charged_reads_all_zero(self):
        cgroup = Cgroup("idle/0", 1.0)
        view = cgroup.usage_window_view(0, 60)
        assert view is not None and (view == 0.0).all()

    def test_gap_invalidates_ring_permanently(self):
        cgroup = self._charged(20)
        cgroup.charge(25, 1.0)  # non-consecutive: ring stands down
        assert cgroup.usage_window_view(0, 26) is None
        cgroup.charge(26, 1.0)  # consecutive again, but too late
        assert cgroup.usage_window_view(0, 27) is None
        # The deque path still serves the data exactly.
        assert cgroup.usage_between(20, 27) == pytest.approx(2.0 / 7)

    def test_empty_window_raises(self):
        cgroup = self._charged(5)
        with pytest.raises(ValueError, match="empty window"):
            cgroup.usage_window_view(10, 10)


class TestSuspectUsageMatrix:
    def test_matrix_matches_usage_between(self):
        rng = np.random.default_rng(11)
        cgroups = [Cgroup(f"s{i}/0", 4.0) for i in range(5)]
        for cgroup in cgroups:
            for t in range(300):
                cgroup.charge(t, float(rng.uniform(0.0, 2.5)))
        # Suspect 3 loses its ring (gap) and must fall back to the deque.
        cgroups[3].charge(305, 1.0)
        timestamps = [150, 160, 170, 230, 290]
        duration = 10
        matrix = suspect_usage_matrix(cgroups, timestamps, duration)
        assert matrix.shape == (5, 5)
        for s, cgroup in enumerate(cgroups):
            for k, t in enumerate(timestamps):
                assert _hex(matrix[s, k]) == _hex(
                    cgroup.usage_between(t - duration, t))

    def test_empty_inputs(self):
        assert suspect_usage_matrix([], [100], 10).shape == (0, 1)
        assert suspect_usage_matrix([Cgroup("a/0", 1.0)], [], 10).shape == (1, 0)

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError, match="duration must be >= 1"):
            suspect_usage_matrix([], [100], 0)


# ---------------------------------------------------------------------------
# Matrix suspect ranking vs the scalar reference


def _scalar_vs_matrix(victim_cpi, threshold, names_jobs, usage_rows):
    suspects = {name: (job, list(row))
                for (name, job), row in zip(names_jobs, usage_rows)}
    expected = rank_suspects(victim_cpi, threshold, suspects)
    got = rank_suspects_matrix(victim_cpi, threshold, names_jobs,
                               np.asarray(usage_rows, dtype=np.float64))
    assert [(s.taskname, s.jobname, _hex(s.correlation))
            for s in expected] == [
        (s.taskname, s.jobname, _hex(s.correlation)) for s in got]


class TestRankSuspectsMatrixParity:
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_matches_scalar_reference(self, data):
        n_points = data.draw(st.integers(1, 12), label="points")
        n_suspects = data.draw(st.integers(1, 8), label="suspects")
        threshold = data.draw(st.floats(0.1, 10.0), label="threshold")
        # Victim CPI values land below, above, or *exactly at* the
        # threshold (the exactly-at case must be skipped, not + 0.0).
        victim = [
            data.draw(st.one_of(
                st.just(threshold),
                st.floats(0.0, 20.0, allow_nan=False)))
            for _ in range(n_points)
        ]
        usage_rows = [
            [data.draw(st.floats(0.0, 50.0, allow_nan=False))
             for _ in range(n_points)]
            for _ in range(n_suspects)
        ]
        names_jobs = [(f"s{i}/0", f"job-{i % 3}")
                      for i in range(n_suspects)]
        _scalar_vs_matrix(victim, threshold, names_jobs, usage_rows)

    def test_zero_usage_suspects_score_zero(self):
        names_jobs = [("idle-b/0", "idle"), ("idle-a/0", "idle")]
        usage = [[0.0, 0.0, 0.0], [0.0, 0.0, 0.0]]
        _scalar_vs_matrix([2.0, 3.0, 1.0], 1.5, names_jobs, usage)
        ranked = rank_suspects_matrix([2.0, 3.0, 1.0], 1.5, names_jobs,
                                      np.asarray(usage))
        assert [s.taskname for s in ranked] == ["idle-a/0", "idle-b/0"]
        assert all(s.correlation == 0.0 for s in ranked)

    def test_constant_victim_cpi(self):
        # Every sample exactly at threshold: all terms skipped, all zero.
        _scalar_vs_matrix([2.0, 2.0, 2.0], 2.0,
                          [("a/0", "a"), ("b/0", "b")],
                          [[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]])

    def test_single_point_window(self):
        _scalar_vs_matrix([3.0], 1.0, [("a/0", "a"), ("b/0", "b")],
                          [[0.5], [2.0]])

    def test_tie_break_is_deterministic_by_taskname(self):
        row = [1.0, 2.0, 0.5]
        names_jobs = [("z/0", "z"), ("m/0", "m"), ("a/0", "a")]
        _scalar_vs_matrix([3.0, 0.5, 2.0], 1.5, names_jobs,
                          [row, list(row), list(row)])
        ranked = rank_suspects_matrix([3.0, 0.5, 2.0], 1.5, names_jobs,
                                      np.asarray([row, row, row]))
        assert [s.taskname for s in ranked] == ["a/0", "m/0", "z/0"]

    def test_negative_usage_error_matches_scalar(self):
        victim = [2.0, 3.0]
        usage = [[1.0, 1.0], [1.0, -0.5]]
        names_jobs = [("a/0", "a"), ("b/0", "b")]
        with pytest.raises(ValueError) as scalar_err:
            rank_suspects(victim, 1.0,
                          {n: (j, list(r))
                           for (n, j), r in zip(names_jobs, usage)})
        with pytest.raises(ValueError) as matrix_err:
            rank_suspects_matrix(victim, 1.0, names_jobs, np.asarray(usage))
        assert str(matrix_err.value) == str(scalar_err.value)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="usage matrix shape"):
            rank_suspects_matrix([1.0, 2.0], 1.0, [("a/0", "a")],
                                 np.zeros((1, 3)))

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="correlation window is empty"):
            rank_suspects_matrix([], 1.0, [("a/0", "a")], np.zeros((1, 0)))

    def test_no_suspects_is_empty(self):
        assert rank_suspects_matrix([1.0], 1.0, [],
                                    np.zeros((0, 1))) == []


class TestRankCotenantSuspects:
    def test_engines_agree_on_live_tasks(self):
        from repro.cluster.interference import ResourceProfile
        from repro.cluster.job import Job, JobSpec
        from repro.cluster.task import PriorityBand, SchedulingClass
        from repro.testing import make_quiet_machine
        from repro.workloads.base import SyntheticWorkload
        from repro.workloads.demand import constant

        machine = make_quiet_machine()
        rng = np.random.default_rng(3)
        profile = ResourceProfile(cache_mib_per_cpu=1.0,
                                  membw_gbps_per_cpu=0.5)
        for j in range(4):
            job = Job(JobSpec(
                name=f"job-{j}", num_tasks=2,
                scheduling_class=SchedulingClass.BATCH,
                priority_band=PriorityBand.NONPRODUCTION,
                cpu_limit_per_task=2.0,
                workload_factory=lambda index: SyntheticWorkload(
                    base_cpi=1.0, profile=profile,
                    demand=constant(float(rng.uniform(.2, 2))))))
            for task in job.tasks:
                machine.place(task)
        for t in range(120):
            machine.tick(t)
        timestamps = [70, 80, 90, 100, 110, 120]
        victim_cpi = [1.0, 2.5, 1.2, 2.9, 1.1, 3.2]
        results = {}
        for engine in ("scalar", "vector"):
            scores, suspect_tasks = rank_cotenant_suspects(
                machine.resident_tasks(), "job-0", victim_cpi, timestamps,
                1.5, 10, engine=engine)
            results[engine] = [(s.taskname, s.jobname, _hex(s.correlation))
                               for s in scores]
            # Job-mates of the victim are never suspected.
            assert all(not name.startswith("job-0")
                       for name in suspect_tasks)
            assert len(suspect_tasks) == 6
        assert results["scalar"] == results["vector"]

    def test_no_cotenants(self):
        scores, suspect_tasks = rank_cotenant_suspects(
            [], "victim", [1.0], [100], 1.0, 10)
        assert scores == [] and suspect_tasks == {}


# ---------------------------------------------------------------------------
# Batch outlier detection vs per-sample observation


def _canon_anomaly(anomaly):
    return (anomaly.taskname, anomaly.jobname, anomaly.platforminfo,
            anomaly.time_seconds, _hex(anomaly.cpi), _hex(anomaly.threshold),
            anomaly.violations, anomaly.first_flag_seconds)


def _detector_state(detector):
    return (detector.samples_seen, detector.samples_skipped_low_usage,
            detector.samples_skipped_no_spec, detector.export_flags())


def _observe_batch(detector, samples, specs, config):
    """Drive observe_batch with the arrays the agent would build."""
    n = len(samples)
    tasknames, task_index = [], {}
    keys, key_index = [], {}
    ts = np.empty(n, dtype=np.int64)
    cpi = np.empty(n)
    usage = np.empty(n)
    thresholds = np.zeros(n)
    has_spec = np.zeros(n, dtype=bool)
    task_code = np.empty(n, dtype=np.int64)
    key_code = np.empty(n, dtype=np.int64)
    for i, sample in enumerate(samples):
        ts[i] = int(sample.timestamp_seconds)
        cpi[i] = sample.cpi
        usage[i] = sample.cpu_usage
        code = task_index.setdefault(sample.taskname, len(tasknames))
        if code == len(tasknames):
            tasknames.append(sample.taskname)
        task_code[i] = code
        kcode = key_index.setdefault(sample.key(), len(keys))
        if kcode == len(keys):
            keys.append(sample.key())
        key_code[i] = kcode
        spec = specs.get(sample.key())
        if spec is not None:
            has_spec[i] = True
            thresholds[i] = spec.outlier_threshold(config.outlier_stddevs)
    return detector.observe_batch(ts, cpi, usage, thresholds, has_spec,
                                  task_code, tasknames, key_code, keys)


def _assert_batch_matches_scalar(samples, specs, config):
    scalar = OutlierDetector(config)
    expected = []
    for i, sample in enumerate(samples):
        _verdict, anomaly = scalar.observe(sample, specs.get(sample.key()))
        if anomaly is not None:
            expected.append((i, _canon_anomaly(anomaly)))
    batch = OutlierDetector(config)
    got = [(row, _canon_anomaly(anomaly))
           for row, anomaly in _observe_batch(batch, samples, specs, config)]
    assert got == expected
    assert _detector_state(batch) == _detector_state(scalar)


class TestObserveBatchParity:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_matches_per_sample_observe(self, data):
        config = CpiConfig()
        jobs = ["alpha", "beta", "gamma"]
        specs = {}
        for job in jobs:
            if data.draw(st.booleans(), label=f"spec-{job}"):
                spec = make_spec(jobname=job, cpi_mean=1.0, cpi_stddev=0.2)
                specs[spec.key()] = spec
        n = data.draw(st.integers(1, 50), label="n")
        samples, t = [], 60
        for i in range(n):
            t += data.draw(st.integers(0, 120), label=f"dt{i}")
            job = data.draw(st.sampled_from(jobs), label=f"job{i}")
            samples.append(make_sample(
                jobname=job, t=t,
                cpu_usage=data.draw(st.floats(0.0, 2.0), label=f"u{i}"),
                cpi=data.draw(st.floats(0.1, 4.0), label=f"c{i}"),
                taskname=f"{job}/{data.draw(st.integers(0, 1))}"))
        _assert_batch_matches_scalar(samples, specs, config)

    def test_streak_expiry_at_exact_window_boundary(self, config):
        # A flag exactly anomaly_window seconds old still counts (expiry
        # is strict: flags[0] < horizon), one second older does not.
        spec = make_spec(jobname="job", cpi_mean=1.0, cpi_stddev=0.1)
        specs = {spec.key(): spec}
        t0 = 600
        half = config.anomaly_window // 2
        hot = dict(jobname="job", cpu_usage=1.0, cpi=5.0)
        samples = [
            make_sample(t=t0, **hot),
            make_sample(t=t0 + half, **hot),
            make_sample(t=t0 + config.anomaly_window, **hot),
            make_sample(t=t0 + config.anomaly_window + half, **hot),
        ]
        _assert_batch_matches_scalar(samples, specs, config)
        detector = OutlierDetector(config)
        anomalies = _observe_batch(detector, samples, specs, config)
        # Third flag: the first is exactly window-old, so 3-in-window fires
        # with the episode anchored at t0.  Fourth: t0 has aged out.
        assert [(row, a.violations, a.first_flag_seconds)
                for row, a in anomalies] == [
            (2, 3, t0), (3, 3, t0 + half)]

    def test_nan_threshold_flags_like_scalar(self, config):
        # A NaN threshold compares False for <=, so the sample flags in
        # both implementations.
        spec = make_spec(jobname="job", cpi_mean=float("nan"),
                         cpi_stddev=0.1)
        specs = {spec.key(): spec}
        samples = [make_sample(t=600 + i, jobname="job", cpu_usage=1.0,
                               cpi=1.0) for i in range(4)]
        _assert_batch_matches_scalar(samples, specs, config)

    def test_cached_verdicts_are_reused(self, config):
        detector = OutlierDetector(config)
        spec = make_spec(jobname="job", cpi_mean=1.0, cpi_stddev=0.1)
        low = [make_sample(t=60 + i, jobname="job", cpu_usage=0.01,
                           cpi=1.0) for i in range(3)]
        verdicts = [detector.observe(s, spec)[0] for s in low]
        assert verdicts[0] is verdicts[1] is verdicts[2]
        assert verdicts[0].skip_reason == "low-usage"
        no_spec = [detector.observe(s, None)[0] for s in low]
        assert no_spec[0] is no_spec[1]
        clean = [detector.observe(s, spec)[0]
                 for s in (make_sample(t=80 + i, jobname="job",
                                       cpu_usage=1.0, cpi=0.9)
                           for i in range(3))]
        assert clean[0] is clean[1] is clean[2]
        assert not clean[0].flagged and not clean[0].skipped


# ---------------------------------------------------------------------------
# End-to-end: the full pipeline, scalar vs vector, clean and under chaos


def _canon_incidents(pipeline):
    # incident_id is a process-global sequence; compare positions, not ids.
    return [(i.time_seconds, i.victim_taskname,
             _hex(i.victim_cpi), i.decision.action.value,
             i.decision.target.name if i.decision.target else None,
             [(s.taskname, _hex(s.correlation)) for s in i.suspects])
            for i in pipeline.all_incidents()]


def _canon_counters(pipeline):
    return sorted((c.name, tuple(sorted(c.labels)), c.value)
                  for c in pipeline.obs.metrics.counters())


def _canon_windows(pipeline):
    return {
        (name, task): [(s.timestamp, _hex(s.cpu_usage), _hex(s.cpi),
                        s.jobname, s.platforminfo)
                       for s in window.samples]
        for name, agent in pipeline.agents.items()
        for task, window in agent._windows.items()
    }


def _run_demo(engine, fault_profile="none", minutes=20):
    scenario = demo_scenario(seed=7, fault_profile=fault_profile,
                             fault_seed=3)
    for agent in scenario.pipeline.agents.values():
        agent.analysis_engine = engine
        if engine == "vector":
            agent.vector_min_batch = 1  # force the batch path at any size
    scenario.simulation.run_minutes(minutes)
    pipeline = scenario.pipeline
    detectors = [(_detector_state(agent.detector))
                 for agent in pipeline.agents.values()]
    return (_canon_incidents(pipeline), _canon_counters(pipeline),
            _canon_windows(pipeline), detectors)


class TestGoldenPipelineParity:
    @pytest.mark.parametrize("fault_profile", ["none", "moderate"])
    def test_scalar_and_vector_trajectories_identical(self, fault_profile):
        scalar = _run_demo("scalar", fault_profile)
        vector = _run_demo("vector", fault_profile)
        for name, s, v in zip(("incidents", "counters", "windows",
                               "detectors"), scalar, vector):
            assert s == v, f"{fault_profile}: {name} diverged"
        assert scalar[0], "expected at least one incident in the demo"

    def test_pipeline_engine_parameter_threads_to_agents(self):
        from repro.cluster.machine import Machine
        from repro.cluster.platform import get_platform
        from repro.cluster.simulation import ClusterSimulation, SimConfig
        from repro.core.pipeline import CpiPipeline
        from repro.obs import Observability

        machine = Machine("m0", get_platform("westmere-2.6"))
        sim = ClusterSimulation([machine], SimConfig(seed=1))
        pipeline = CpiPipeline(sim, CpiConfig(), obs=Observability(),
                               analysis_engine="scalar")
        assert all(agent.analysis_engine == "scalar"
                   for agent in pipeline.agents.values())


# ---------------------------------------------------------------------------
# Parallel trials and experiments


class TestParallelTrials:
    FAST = None  # initialised lazily to keep import cheap

    @classmethod
    def _fast_config(cls):
        from repro.experiments.trials import TrialConfig

        if cls.FAST is None:
            cls.FAST = TrialConfig(calibration_seconds=300,
                                   interference_seconds=360,
                                   cap_seconds=120)
        return cls.FAST

    def test_parallel_identical_to_serial(self):
        from repro.experiments.trials import run_trials

        config = self._fast_config()
        serial = run_trials(4, config, seed_base=5)
        # min_per_job=0 forces real fan-out: 4 trials across 2 workers
        # would otherwise take the documented serial fallback.
        parallel = run_trials(4, config, seed_base=5, jobs=2, min_per_job=0)
        assert [repr(t) for t in parallel] == [repr(t) for t in serial]

    def test_short_corpus_falls_back_to_serial(self):
        from repro.experiments.trials import run_trials
        from repro.obs import default_observability

        config = self._fast_config()
        registry = default_observability().metrics
        before = registry.value("trials_serial_fallback") or 0
        run_trials(2, config, seed_base=5, jobs=2)
        assert (registry.value("trials_serial_fallback") or 0) == before + 1

    def test_trial_identical_across_engines(self, monkeypatch):
        from repro.experiments.trials import run_trial

        config = self._fast_config()
        monkeypatch.setenv(ANALYSIS_ENGINE_ENV, "scalar")
        scalar = run_trial(9, config)
        monkeypatch.setenv(ANALYSIS_ENGINE_ENV, "vector")
        vector = run_trial(9, config)
        assert repr(vector) == repr(scalar)

    def test_bad_jobs_rejected(self):
        from repro.experiments.trials import run_trials

        with pytest.raises(ValueError, match="jobs must be >= 1"):
            run_trials(2, jobs=0)


class TestRunExperiments:
    def test_unknown_name_raises_before_running(self):
        from repro.experiments.registry import run_experiments

        with pytest.raises(KeyError, match="unknown experiment 'nope'"):
            run_experiments(["table2", "nope"], jobs=2)

    def test_parallel_reports_in_input_order(self):
        from repro.experiments.registry import run_experiment, run_experiments

        pairs = run_experiments(["table2", "table2"], jobs=2)
        assert [name for name, _ in pairs] == ["table2", "table2"]
        reference = run_experiment("table2")
        for _name, report in pairs:
            assert report.experiment == reference.experiment
            assert len(report.rows) == len(reference.rows)

    def test_jobs_clamped_to_work(self):
        from repro.experiments.registry import run_experiments

        (name, report), = run_experiments(["table2"], jobs=8)
        assert name == "table2" and report is not None


# ---------------------------------------------------------------------------
# CLI --jobs clamping


class TestJobsClamp:
    def test_oversubscribed_jobs_clamped_with_warning(self, monkeypatch,
                                                      capsys):
        from repro import cli
        from repro.obs import Observability, set_default_observability

        obs = Observability()
        set_default_observability(obs)
        monkeypatch.setattr(cli.os, "cpu_count", lambda: 2)
        assert cli._effective_jobs(8) == 2
        err = capsys.readouterr().err
        assert "--jobs 8" in err and "clamping to 2" in err
        clamped = [c for c in obs.metrics.counters()
                   if c.name == "shard_jobs_clamped"]
        assert len(clamped) == 1 and clamped[0].value == 1

    def test_within_budget_passes_through_silently(self, monkeypatch,
                                                   capsys):
        from repro import cli

        monkeypatch.setattr(cli.os, "cpu_count", lambda: 4)
        assert cli._effective_jobs(4) == 4
        assert cli._effective_jobs(1) == 1
        assert capsys.readouterr().err == ""

    def test_cpu_count_unknown_falls_back_to_one(self, monkeypatch, capsys):
        from repro import cli
        from repro.obs import Observability, set_default_observability

        set_default_observability(Observability())
        monkeypatch.setattr(cli.os, "cpu_count", lambda: None)
        assert cli._effective_jobs(3) == 1
        assert "clamping to 1" in capsys.readouterr().err

    def test_experiment_parser_accepts_jobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["experiment", "table2", "--jobs", "3"])
        assert args.jobs == 3
