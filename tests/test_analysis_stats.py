"""Unit tests for repro.analysis.stats."""

import math

import numpy as np
import pytest

from repro.analysis.stats import (
    Ecdf,
    coefficient_of_variation,
    normalize_to_min,
    pearson_correlation,
    rolling_mean,
    summarize,
)


class TestPearsonCorrelation:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_independent_series_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=5000)
        y = rng.normal(size=5000)
        assert abs(pearson_correlation(x, y)) < 0.05

    def test_constant_series_returns_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0
        assert pearson_correlation([1, 2, 3], [5, 5, 5]) == 0.0

    def test_affine_invariance(self):
        x = [1.0, 3.0, 2.0, 5.0]
        y = [10.0, 2.0, 7.0, 1.0]
        r1 = pearson_correlation(x, y)
        r2 = pearson_correlation([3 * v + 7 for v in x], y)
        assert r1 == pytest.approx(r2)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="lengths differ"):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_too_few_points_raise(self):
        with pytest.raises(ValueError, match="at least 2"):
            pearson_correlation([1], [1])

    def test_symmetry(self):
        x = [1.0, 4.0, 2.0]
        y = [3.0, 1.0, 5.0]
        assert pearson_correlation(x, y) == pytest.approx(pearson_correlation(y, x))

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            pearson_correlation(np.ones((2, 2)), np.ones((2, 2)))


class TestNormalizeToMin:
    def test_minimum_maps_to_one(self):
        out = normalize_to_min([2.0, 4.0, 8.0])
        assert out[0] == pytest.approx(1.0)
        assert out.tolist() == pytest.approx([1.0, 2.0, 4.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            normalize_to_min([])

    def test_nonpositive_min_raises(self):
        with pytest.raises(ValueError, match="positive"):
            normalize_to_min([0.0, 1.0])

    def test_preserves_length(self):
        assert len(normalize_to_min([3.0, 5.0, 4.0, 9.0])) == 4


class TestCoefficientOfVariation:
    def test_constant_series_is_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        # mean 2, population stddev 1 -> CV 0.5
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_zero_mean_raises(self):
        with pytest.raises(ValueError, match="zero-mean"):
            coefficient_of_variation([-1.0, 1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([])


class TestRollingMean:
    def test_window_one_is_identity(self):
        values = [1.0, 5.0, 3.0]
        assert rolling_mean(values, 1).tolist() == values

    def test_ramp_up_prefix(self):
        out = rolling_mean([2.0, 4.0, 6.0, 8.0], window=2)
        assert out.tolist() == pytest.approx([2.0, 3.0, 5.0, 7.0])

    def test_window_larger_than_series(self):
        out = rolling_mean([2.0, 4.0], window=10)
        assert out.tolist() == pytest.approx([2.0, 3.0])

    def test_empty_input(self):
        assert rolling_mean([], 3).size == 0

    def test_bad_window_raises(self):
        with pytest.raises(ValueError, match="window"):
            rolling_mean([1.0], 0)


class TestEcdf:
    def test_evaluation(self):
        ecdf = Ecdf([1.0, 2.0, 3.0, 4.0])
        assert ecdf(0.5) == 0.0
        assert ecdf(2.0) == 0.5
        assert ecdf(4.0) == 1.0
        assert ecdf(100.0) == 1.0

    def test_median_and_quantiles(self):
        ecdf = Ecdf(range(1, 102))  # 1..101
        assert ecdf.median() == pytest.approx(51.0)
        assert ecdf.quantile(0.0) == 1.0
        assert ecdf.quantile(1.0) == 101.0

    def test_quantile_bounds(self):
        ecdf = Ecdf([1.0])
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_points_monotone(self):
        ecdf = Ecdf(np.random.default_rng(1).normal(size=200))
        pts = ecdf.points(50)
        xs = [p[0] for p in pts]
        assert xs == sorted(xs)
        assert pts[0][1] == 0.0 and pts[-1][1] == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Ecdf([])

    def test_n(self):
        assert Ecdf([1, 2, 3]).n == 3


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)
        assert s.stddev == pytest.approx(math.sqrt(1.25))

    def test_cv(self):
        s = summarize([1.0, 3.0])
        assert s.cv == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestSpearmanCorrelation:
    def test_monotone_nonlinear_is_one(self):
        from repro.analysis.stats import spearman_correlation
        x = [1.0, 2.0, 3.0, 4.0, 5.0]
        y = [v ** 3 for v in x]  # nonlinear but monotone
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    def test_reverse_is_minus_one(self):
        from repro.analysis.stats import spearman_correlation
        assert spearman_correlation([1, 2, 3], [9, 4, 1]) == pytest.approx(-1.0)

    def test_robust_to_outlier(self):
        from repro.analysis.stats import pearson_correlation, spearman_correlation
        x = list(range(20))
        y = list(range(20))
        y[-1] = 10_000  # one wild value
        assert spearman_correlation(x, y) == pytest.approx(1.0)
        assert pearson_correlation(x, y) < 0.9  # pearson gets dragged

    def test_ties_average_ranks(self):
        from repro.analysis.stats import spearman_correlation
        # Ties handled symmetrically: still a perfect monotone relation.
        assert spearman_correlation([1, 1, 2, 2], [3, 3, 5, 5]) == \
            pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy import stats as sps
        from repro.analysis.stats import spearman_correlation
        rng = np.random.default_rng(3)
        x = rng.normal(size=50)
        y = x + rng.normal(scale=0.5, size=50)
        ours = spearman_correlation(x, y)
        theirs = sps.spearmanr(x, y).statistic
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_validation(self):
        from repro.analysis.stats import spearman_correlation
        with pytest.raises(ValueError, match="lengths"):
            spearman_correlation([1, 2], [1])
        with pytest.raises(ValueError, match="at least 2"):
            spearman_correlation([1], [1])
