"""Unit tests for repro.workloads.antagonists and repro.workloads.services."""

import numpy as np
import pytest

from repro.cluster.job import Job
from repro.cluster.task import SchedulingClass
from repro.workloads.antagonists import (
    AntagonistKind,
    make_antagonist_job_spec,
    make_antagonist_workload,
)
from repro.workloads.services import (
    make_bimodal_frontend_spec,
    make_service_job_spec,
    make_service_workload,
)


class TestAntagonistArchetypes:
    @pytest.mark.parametrize("kind", list(AntagonistKind))
    def test_every_kind_builds(self, kind):
        workload = make_antagonist_workload(kind, np.random.default_rng(0))
        assert workload.base_cpi() > 0
        assert workload.cpu_demand(0) >= 0
        assert workload.thread_count(0) >= 1

    def test_bursty_demand(self):
        workload = make_antagonist_workload(
            AntagonistKind.VIDEO_PROCESSING, np.random.default_rng(0),
            phase=0, demand_noise=0.0)
        demands = [workload.cpu_demand(t) for t in range(0, 600, 10)]
        assert max(demands) > 3 * min(demands)

    def test_spinner_is_innocent(self):
        # High CPU, negligible shared-resource footprint.
        spinner = make_antagonist_workload(
            AntagonistKind.CPU_SPINNER, np.random.default_rng(0))
        heavy = make_antagonist_workload(
            AntagonistKind.CACHE_THRASHER, np.random.default_rng(0))
        assert (spinner.resource_profile().cache_mib_per_cpu
                < heavy.resource_profile().cache_mib_per_cpu / 50)

    def test_phase_randomised_across_tasks(self):
        spec = make_antagonist_job_spec(
            "v", AntagonistKind.VIDEO_PROCESSING, num_tasks=4, seed=2)
        job = Job(spec)
        series = [tuple(t.workload.cpu_demand(x) for x in range(0, 600, 60))
                  for t in job]
        assert len(set(series)) > 1

    def test_best_effort_option(self):
        spec = make_antagonist_job_spec("v", AntagonistKind.REPLAYER,
                                        best_effort=True)
        assert spec.scheduling_class is SchedulingClass.BEST_EFFORT

    def test_demand_scale(self):
        base = make_antagonist_workload(
            AntagonistKind.MEMBW_HOG, np.random.default_rng(0), phase=0,
            demand_noise=0.0)
        scaled = make_antagonist_workload(
            AntagonistKind.MEMBW_HOG, np.random.default_rng(0), phase=0,
            demand_scale=2.0, demand_noise=0.0)
        assert scaled.cpu_demand(0) == pytest.approx(2 * base.cpu_demand(0))


class TestServices:
    def test_service_workload(self):
        workload = make_service_workload(np.random.default_rng(0),
                                         base_cpi=1.2, demand_level=1.5)
        assert workload.base_cpi() == 1.2
        demands = [workload.cpu_demand(t) for t in range(50)]
        assert np.mean(demands) == pytest.approx(1.5, rel=0.1)

    def test_service_job_spec_defaults_ls_production(self):
        from repro.cluster.task import PriorityBand
        spec = make_service_job_spec("svc", num_tasks=3)
        assert spec.scheduling_class is SchedulingClass.LATENCY_SENSITIVE
        assert spec.priority_band is PriorityBand.PRODUCTION

    def test_protection_override(self):
        spec = make_service_job_spec("svc", num_tasks=1,
                                     protection_eligible=False)
        assert not Job(spec).protection_eligible


class TestBimodalFrontend:
    def test_demand_is_bimodal(self):
        job = Job(make_bimodal_frontend_spec("fe", num_tasks=1, seed=0,
                                             period=100))
        workload = job.tasks[0].workload
        demands = [workload.cpu_demand(t) for t in range(200)]
        assert min(demands) < 0.1
        assert max(demands) > 0.25

    def test_cold_start_penalty_configured(self):
        job = Job(make_bimodal_frontend_spec("fe", num_tasks=1))
        profile = job.tasks[0].workload.resource_profile()
        assert profile.cold_start_penalty > 0

    def test_cpi_swings_without_antagonist(self):
        # Case 3's self-inflicted CPI swings, reproduced on a quiet machine.
        from repro.testing import make_quiet_machine
        machine = make_quiet_machine()
        job = Job(make_bimodal_frontend_spec("fe", num_tasks=1, seed=1,
                                             period=100))
        machine.place(job.tasks[0])
        cpis, usages = [], []
        for t in range(200):
            result = machine.tick(t)
            cpis.append(result.cpis["fe/0"])
            usages.append(result.grants["fe/0"])
        assert max(cpis) > 2.5 * min(cpis)
        # High CPI coincides with low usage (Figure 10's anti-correlation).
        import numpy as np
        assert np.corrcoef(cpis, usages)[0, 1] < -0.5


class TestGcService:
    def test_pause_raises_cpi_briefly(self):
        from repro.workloads.services import make_gc_service_spec
        job = Job(make_gc_service_spec("gc", num_tasks=1, seed=0,
                                       gc_period=300, gc_duration=15,
                                       gc_cpi_multiplier=3.0))
        workload = job.tasks[0].workload
        cpis = []
        for t in range(600):
            workload.on_tick(t, 1.0, False)
            cpis.append(workload.base_cpi())
        assert max(cpis) == pytest.approx(3.0 * min(cpis))
        # Pauses occupy ~5% of time.
        high = sum(1 for c in cpis if c > 2.0 * min(cpis))
        assert high == pytest.approx(30, abs=2)

    def test_phases_independent_across_tasks(self):
        from repro.workloads.services import make_gc_service_spec
        job = Job(make_gc_service_spec("gc", num_tasks=4, seed=3))
        def pause_start(w):
            for t in range(2000):
                w.on_tick(t, 1.0, False)
                if w.base_cpi() > 2.0:
                    return t
            return None
        starts = {pause_start(t.workload) for t in job}
        assert len(starts) > 1

    def test_window_rule_absorbs_isolated_gc_spikes(self):
        """The detection-robustness claim: a GC'd service sharing a quiet
        machine raises outlier flags during pauses but (with independent,
        sparse pauses) no 3-in-5-minutes anomaly — while a 1-shot rule
        would page someone every few minutes."""
        from repro.core.config import CpiConfig
        from repro.core.outlier import OutlierDetector
        from repro.perf.sampler import CpiSampler, SamplerConfig
        from repro.testing import make_quiet_machine
        from repro.workloads.services import make_gc_service_spec
        from tests.conftest import make_spec

        machine = make_quiet_machine()
        job = Job(make_gc_service_spec("gc", num_tasks=1, seed=5,
                                       gc_period=437, gc_duration=12,
                                       gc_cpi_multiplier=2.5))
        machine.place(job.tasks[0])
        sampler = CpiSampler(machine, SamplerConfig())
        samples = []
        for t in range(90 * 60):
            machine.tick(t)
            samples.extend(sampler.tick(t))
        spec = make_spec(jobname="gc", cpi_mean=1.1, cpi_stddev=0.09)

        def anomalies(config):
            detector = OutlierDetector(config)
            count = 0
            for sample in samples:
                _, anomaly = detector.observe(sample, spec)
                count += anomaly is not None
            return count

        one_shot = anomalies(CpiConfig(anomaly_violations=1))
        paper = anomalies(CpiConfig())
        assert one_shot >= 3          # pauses do flag
        assert paper == 0             # but never 3 times in 5 minutes
