"""Unit tests for the baseline identification schemes."""

import numpy as np
import pytest

from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.cluster.task import SchedulingClass
from repro.core.baselines import (
    ActiveProbeIdentifier,
    pick_random_suspect,
    rank_by_l3_misses,
    rank_by_usage,
)
from repro.testing import (
    NOISY_NEIGHBOR_PROFILE,
    QUIET_PROFILE,
    SENSITIVE_PROFILE,
    make_quiet_machine,
    make_scripted_job,
)


def build_machine_with_mix():
    """Victim + heavy antagonist + innocent spinner on one machine."""
    machine = make_quiet_machine()
    victim = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                               base_cpi=1.0, profile=SENSITIVE_PROFILE)
    antagonist = make_scripted_job("ant", [4.0], cpu_limit=8.0,
                                   scheduling_class=SchedulingClass.BATCH,
                                   profile=NOISY_NEIGHBOR_PROFILE)
    spinner = make_scripted_job("spin", [6.0], cpu_limit=8.0,
                                scheduling_class=SchedulingClass.BATCH,
                                profile=QUIET_PROFILE)
    for job in (victim, antagonist, spinner):
        machine.place(job.tasks[0])
    return machine, victim, antagonist, spinner


class TestUsageRanker:
    def test_ranks_hungriest_first(self):
        machine, victim, _, _ = build_machine_with_mix()
        for t in range(30):
            machine.tick(t)
        ranked = rank_by_usage(machine, victim.tasks[0], window=(0, 30))
        # The spinner uses the most CPU -> wrongly accused first.
        assert ranked[0][0].name == "spin/0"
        assert ranked[0][1] > ranked[1][1]

    def test_excludes_victim_jobmates(self):
        machine, victim, _, _ = build_machine_with_mix()
        ranked = rank_by_usage(machine, victim.tasks[0], window=(0, 1))
        assert all(task.job.name != "victim" for task, _ in ranked)


class TestL3Ranker:
    def test_ranks_thrasher_first(self):
        machine, victim, antagonist, _ = build_machine_with_mix()
        for t in range(30):
            machine.tick(t)
        ranked = rank_by_l3_misses(machine, victim.tasks[0])
        # L3 misses finger the real antagonist despite lower CPU usage.
        assert ranked[0][0].name == "ant/0"


class TestRandomPick:
    def test_picks_a_cotenant(self):
        machine, victim, _, _ = build_machine_with_mix()
        rng = np.random.default_rng(0)
        picks = {pick_random_suspect(machine, victim.tasks[0], rng).name
                 for _ in range(50)}
        assert picks == {"ant/0", "spin/0"}

    def test_alone_returns_none(self):
        machine = make_quiet_machine()
        victim = make_scripted_job("v", [1.0])
        machine.place(victim.tasks[0])
        assert pick_random_suspect(machine, victim.tasks[0],
                                   np.random.default_rng(0)) is None


class TestActiveProbe:
    def build_sim(self):
        machine, victim, antagonist, spinner = build_machine_with_mix()
        sim = ClusterSimulation([machine], SimConfig(seed=2))
        return sim, machine, victim, antagonist, spinner

    def test_finds_the_antagonist_eventually(self):
        sim, machine, victim, antagonist, _ = self.build_sim()
        probe = ActiveProbeIdentifier(sim, machine, probe_seconds=20)
        report = probe.identify(victim.tasks[0])
        assert report.identified == "ant/0"

    def test_disrupts_innocents_on_the_way(self):
        # The paper's objection: the spinner (highest CPU) gets probed first
        # and loses real CPU for nothing.
        sim, machine, victim, _, spinner = self.build_sim()
        probe = ActiveProbeIdentifier(sim, machine, probe_seconds=20)
        report = probe.identify(victim.tasks[0])
        assert "spin/0" in report.innocents_disrupted
        assert report.cpu_seconds_denied > 50.0
        assert report.probes_run >= 2
        assert report.seconds_elapsed >= 3 * 20  # baseline + >= 2 probes

    def test_max_probes(self):
        sim, machine, victim, _, _ = self.build_sim()
        probe = ActiveProbeIdentifier(sim, machine, probe_seconds=10)
        report = probe.identify(victim.tasks[0], max_probes=1)
        assert report.probes_run == 1

    def test_validation(self):
        sim, machine, *_ = self.build_sim()
        with pytest.raises(ValueError, match="probe_seconds"):
            ActiveProbeIdentifier(sim, machine, probe_seconds=0)
        with pytest.raises(ValueError, match="improvement_fraction"):
            ActiveProbeIdentifier(sim, machine, improvement_fraction=0.0)
        with pytest.raises(ValueError, match="probe_quota"):
            ActiveProbeIdentifier(sim, machine, probe_quota=-0.1)
