"""Unit tests for repro.workloads.batch (lame-duck, give-up, stragglers)."""

import numpy as np
import pytest

from repro.cluster.job import Job
from repro.cluster.task import SchedulingClass
from repro.workloads.batch import (
    BatchWorkload,
    LameDuckBehavior,
    MapReduceCoordinator,
    MapReduceWorker,
    make_batch_job_spec,
    make_mapreduce_job_spec,
)


class TestLameDuckBehavior:
    def test_normal_threads(self):
        behavior = LameDuckBehavior()
        assert behavior.thread_count() == 8
        assert behavior.state_name == "normal"

    def test_capped_grows_threads(self):
        # Case 5: "the number of threads rapidly grows to around 80".
        behavior = LameDuckBehavior()
        behavior.observe(0, capped=True)
        assert behavior.thread_count() == 80
        assert behavior.state_name == "capped"

    def test_lame_duck_after_cap_lifts(self):
        # "the thread count drops to 2 ... for tens of minutes".
        behavior = LameDuckBehavior(lameduck_duration=1800)
        behavior.observe(0, capped=True)
        behavior.observe(1, capped=False)
        assert behavior.thread_count() == 2
        assert behavior.state_name == "lame-duck"

    def test_recovery_after_duration(self):
        behavior = LameDuckBehavior(lameduck_duration=100)
        behavior.observe(0, capped=True)
        behavior.observe(1, capped=False)
        behavior.observe(50, capped=False)
        assert behavior.thread_count() == 2
        behavior.observe(101, capped=False)
        assert behavior.thread_count() == 8

    def test_recap_during_lameduck(self):
        behavior = LameDuckBehavior(lameduck_duration=100)
        behavior.observe(0, capped=True)
        behavior.observe(1, capped=False)
        behavior.observe(2, capped=True)  # capped again mid-lame-duck
        assert behavior.thread_count() == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            LameDuckBehavior(normal_threads=0)
        with pytest.raises(ValueError):
            LameDuckBehavior(lameduck_duration=-1)


class TestMapReduceWorker:
    def make_worker(self, **kwargs):
        return MapReduceWorker(rng=np.random.default_rng(0), **kwargs)

    def test_survives_first_episode(self):
        # Case 6: "survived the first hard-capping".
        worker = self.make_worker(give_up_episode=2, exit_delay=10)
        for t in range(60):
            outcome = worker.on_tick(t, 0.1, capped=True)
            assert outcome is None
        assert worker.cap_episodes == 1

    def test_exits_during_second_episode(self):
        # "but exited abruptly during the second throttling".
        worker = self.make_worker(give_up_episode=2, exit_delay=10)
        for t in range(30):
            worker.on_tick(t, 0.1, capped=True)        # episode 1
        for t in range(30, 60):
            worker.on_tick(t, 1.0, capped=False)        # cap lifted
        outcome = None
        for t in range(60, 90):
            outcome = worker.on_tick(t, 0.1, capped=True)  # episode 2
            if outcome:
                break
        assert outcome == "exited"
        assert worker.cap_episodes == 2

    def test_exit_delay_respected(self):
        worker = self.make_worker(give_up_episode=1, exit_delay=5)
        outcomes = [worker.on_tick(t, 0.1, capped=True) for t in range(7)]
        assert outcomes[:5] == [None] * 5
        assert outcomes[6] == "exited" or outcomes[5] == "exited"

    def test_completes_after_work_done(self):
        worker = self.make_worker(work_cpu_seconds=5.0)
        outcome = None
        for t in range(10):
            outcome = worker.on_tick(t, 1.0, capped=False)
            if outcome:
                break
        assert outcome == "completed"

    def test_thread_count_follows_lame_duck(self):
        worker = self.make_worker()
        assert worker.thread_count(0) == 8
        worker.on_tick(0, 0.1, capped=True)
        assert worker.thread_count(1) == 80

    def test_validation(self):
        with pytest.raises(ValueError, match="give_up_episode"):
            self.make_worker(give_up_episode=0)
        with pytest.raises(ValueError, match="exit_delay"):
            self.make_worker(exit_delay=-1)


class TestMapReduceCoordinator:
    def make_job(self, num_workers=5):
        return Job(make_mapreduce_job_spec("mr", num_workers=num_workers,
                                           seed=1))

    def test_no_stragglers_with_uniform_progress(self):
        job = self.make_job()
        for task in job:
            task.mark_running("m0")
            task.workload.granted_cpu_seconds = 100.0
        coordinator = MapReduceCoordinator(job)
        assert coordinator.stragglers() == []

    def test_straggler_detected(self):
        job = self.make_job()
        for i, task in enumerate(job):
            task.mark_running("m0")
            task.workload.granted_cpu_seconds = 100.0 if i else 10.0
        coordinator = MapReduceCoordinator(job)
        names = [t.name for t in coordinator.stragglers()]
        assert names == ["mr/0"]

    def test_nominate_once(self):
        job = self.make_job()
        for i, task in enumerate(job):
            task.mark_running("m0")
            task.workload.granted_cpu_seconds = 100.0 if i else 10.0
        coordinator = MapReduceCoordinator(job)
        assert len(coordinator.nominate_duplicates()) == 1
        assert coordinator.nominate_duplicates() == []

    def test_too_few_workers_no_stragglers(self):
        job = self.make_job(num_workers=2)
        for task in job:
            task.mark_running("m0")
        coordinator = MapReduceCoordinator(job)
        assert coordinator.stragglers() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            MapReduceCoordinator(self.make_job(), straggler_fraction=1.0)


class TestJobSpecs:
    def test_batch_spec(self):
        spec = make_batch_job_spec("b", num_tasks=10)
        assert spec.scheduling_class is SchedulingClass.BATCH
        job = Job(spec)
        assert isinstance(job.tasks[0].workload, BatchWorkload)

    def test_best_effort_flag(self):
        spec = make_batch_job_spec("b", num_tasks=1, best_effort=True)
        assert spec.scheduling_class is SchedulingClass.BEST_EFFORT

    def test_transactions_interface(self):
        job = Job(make_batch_job_spec("b", num_tasks=1, seed=5))
        workload = job.tasks[0].workload
        assert workload.transactions_for(2e7) > 0
