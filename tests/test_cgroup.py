"""Unit tests for repro.cluster.cgroup (CFS bandwidth control model)."""

import pytest

from repro.cluster.cgroup import BandwidthCap, Cgroup


class TestBandwidthCap:
    def test_active_window(self):
        cap = BandwidthCap(quota=0.1, expires_at=100)
        assert cap.active_at(0)
        assert cap.active_at(99)
        assert not cap.active_at(100)

    def test_negative_quota_rejected(self):
        with pytest.raises(ValueError, match="quota"):
            BandwidthCap(quota=-0.1, expires_at=10)


class TestCgroup:
    def test_limit_enforced(self):
        cg = Cgroup("job/0", cpu_limit=2.0)
        assert cg.allowed_usage(5.0, t=0) == 2.0
        assert cg.allowed_usage(1.5, t=0) == 1.5

    def test_cap_tightens_allowance(self):
        cg = Cgroup("job/0", cpu_limit=2.0)
        cg.apply_cap(quota=0.1, now=0, duration=300)
        assert cg.allowed_usage(5.0, t=0) == pytest.approx(0.1)
        assert cg.is_capped(0)

    def test_cap_expires(self):
        cg = Cgroup("job/0", cpu_limit=2.0)
        cg.apply_cap(quota=0.1, now=0, duration=300)
        assert cg.allowed_usage(5.0, t=300) == 2.0
        assert not cg.is_capped(300)

    def test_cap_at_drops_lazily(self):
        cg = Cgroup("job/0", cpu_limit=2.0)
        cg.apply_cap(quota=0.1, now=0, duration=10)
        assert cg.cap_at(5) is not None
        assert cg.cap_at(10) is None
        assert cg.cap_at(5) is None  # already dropped, even for earlier t

    def test_recap_replaces(self):
        cg = Cgroup("job/0", cpu_limit=2.0)
        cg.apply_cap(quota=0.1, now=0, duration=300)
        cg.apply_cap(quota=0.01, now=10, duration=300)
        assert cg.allowed_usage(5.0, t=10) == pytest.approx(0.01)

    def test_release_cap(self):
        cg = Cgroup("job/0", cpu_limit=2.0)
        cg.apply_cap(quota=0.1, now=0, duration=300)
        cg.release_cap()
        assert not cg.is_capped(1)

    def test_paper_quota_semantics(self):
        # "25 ms in each 250 ms window ... corresponds to a cap of
        # 0.1 CPU-sec/sec".  Our quota is directly CPU-sec/sec.
        cg = Cgroup("batch/0", cpu_limit=8.0)
        cg.apply_cap(quota=25e-3 / 250e-3, now=0, duration=300)
        assert cg.allowed_usage(8.0, t=0) == pytest.approx(0.1)

    def test_charge_and_window_average(self):
        cg = Cgroup("job/0", cpu_limit=4.0)
        for t in range(10):
            cg.charge(t, 2.0)
        assert cg.usage_between(0, 10) == pytest.approx(2.0)
        assert cg.usage_between(5, 10) == pytest.approx(2.0)

    def test_window_with_missing_seconds_counts_zero(self):
        cg = Cgroup("job/0", cpu_limit=4.0)
        cg.charge(0, 4.0)
        # seconds 1..3 unrecorded -> zero usage
        assert cg.usage_between(0, 4) == pytest.approx(1.0)

    def test_total_cpu_seconds(self):
        cg = Cgroup("job/0", cpu_limit=4.0)
        cg.charge(0, 1.5)
        cg.charge(1, 0.5)
        assert cg.total_cpu_seconds == pytest.approx(2.0)

    def test_last_usage(self):
        cg = Cgroup("job/0", cpu_limit=4.0)
        assert cg.last_usage() == 0.0
        cg.charge(0, 1.0)
        cg.charge(1, 3.0)
        assert cg.last_usage() == 3.0

    def test_empty_window_raises(self):
        cg = Cgroup("job/0", cpu_limit=4.0)
        with pytest.raises(ValueError, match="empty window"):
            cg.usage_between(10, 10)

    def test_negative_inputs_rejected(self):
        cg = Cgroup("job/0", cpu_limit=4.0)
        with pytest.raises(ValueError):
            cg.charge(0, -1.0)
        with pytest.raises(ValueError):
            cg.allowed_usage(-1.0, t=0)
        with pytest.raises(ValueError):
            Cgroup("job/0", cpu_limit=0.0)
        with pytest.raises(ValueError):
            cg.apply_cap(quota=0.1, now=0, duration=0)


class TestUsageBetweenPaths:
    """The bracketing fast path vs the filtered deque scan.

    ``usage_between`` skips the whole-deque scan when the last ``span``
    entries exactly bracket the window.  Both paths sum the same entries,
    so their results are pinned bit-identical (``float.hex()``), and the
    fallback cases (short history, mid-window arrival, entries beyond the
    window) get explicit coverage since the sampling plane leans on them.
    """

    def _charged(self, usages, t0=0):
        cg = Cgroup("job/0", cpu_limit=8.0)
        for i, u in enumerate(usages):
            cg.charge(t0 + i, u)
        return cg

    def test_bracketing_fast_path_matches_filtered_scan(self):
        # Irregular values so ordering mistakes can't cancel out.
        usages = [0.1, 2.7, 0.0, 3.3, 1e-3, 4.0, 0.9, 2.2, 0.5, 1.7]
        fast = self._charged(usages)            # history == window exactly
        # Same window via the filtered scan: extra history ahead of the
        # window breaks the bracketing condition (history[-span] != start).
        slow = self._charged(usages + [9.9])
        expected = sum(usages) / 10
        assert fast.usage_between(0, 10).hex() == \
            slow.usage_between(0, 10).hex() == float(expected).hex()

    def test_history_shorter_than_span_scans(self):
        # 3 charges, 10-second window: len(history) < span forces the scan
        # and the 7 missing seconds count as zero.
        cg = self._charged([1.0, 2.0, 3.0], t0=7)
        assert cg.usage_between(0, 10).hex() == (6.0 / 10).hex()

    def test_mid_window_arrival_scans(self):
        # First charge lands inside the window: the last `span` entries
        # can't bracket [start, end), so the filtered scan runs.
        cg = self._charged([0.5, 1.5, 2.5], t0=5)
        assert cg.usage_between(3, 8).hex() == (4.5 / 5).hex()

    def test_entries_beyond_window_filtered_out(self):
        # History extends past end-1: bracketing fails on history[-1],
        # and the scan must ignore charges at/after `end`.
        cg = self._charged([1.0, 2.0, 4.0, 8.0, 16.0])
        assert cg.usage_between(1, 4).hex() == ((2.0 + 4.0 + 8.0) / 3).hex()

    def test_fast_path_engages_with_older_history_present(self):
        # Plenty of history before the window, none after: the last `span`
        # entries bracket exactly, so islice and the filtered scan see the
        # same entries — pin that they agree bitwise.
        usages = [0.3, 1.1, 2.9, 0.7, 5.5, 0.2, 3.8, 1.4]
        cg = self._charged(usages)
        window = usages[5:]
        assert cg.usage_between(5, 8).hex() == \
            float(sum(window) / 3).hex()
