"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestParser:
    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"
        assert args.minutes == 30
        assert args.seed == 42

    def test_demo_options(self):
        args = build_parser().parse_args(["demo", "--minutes", "5",
                                          "--seed", "7"])
        assert args.minutes == 5
        assert args.seed == 7

    def test_experiment_requires_names(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_flag_forms(self):
        args = build_parser().parse_args(["demo"])
        assert args.profile is None
        args = build_parser().parse_args(["demo", "--profile"])
        assert args.profile == ""
        args = build_parser().parse_args(["demo", "--profile", "x.pstats"])
        assert args.profile == "x.pstats"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_demo_runs_and_reports(self, capsys):
        assert main(["demo", "--minutes", "12"]) == 0
        out = capsys.readouterr().out
        assert "incidents" in out
        assert "throttle" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "== table2" in out
        assert "0.35" in out

    def test_experiment_unknown_name(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_mixed_valid_invalid(self, capsys):
        assert main(["experiment", "table2", "fig99"]) == 2
        captured = capsys.readouterr()
        assert "== table2" in captured.out
        assert "fig99" in captured.err

    def test_demo_under_profile(self, capsys, tmp_path):
        stats_path = tmp_path / "demo.pstats"
        assert main(["demo", "--minutes", "2",
                     "--profile", str(stats_path)]) == 0
        out = capsys.readouterr().out
        assert "incidents" in out        # the demo itself still ran
        assert "function calls" in out   # the cProfile report printed
        assert stats_path.exists()


class TestRegistry:
    def test_all_entries_have_descriptions(self):
        for name, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError, match="valid:"):
            run_experiment("nope")

    def test_table2_report_shape(self):
        report = run_experiment("table2")
        assert report.experiment == "table2"
        assert len(report.rows) >= 3


class TestExperimentAll:
    def test_all_expands_to_registry(self, monkeypatch, capsys):
        # Stub every runner so 'all' stays fast; verify each is invoked.
        from repro.experiments import registry
        from repro.experiments.reporting import ExperimentReport

        invoked = []

        def stub_for(name):
            def runner():
                invoked.append(name)
                report = ExperimentReport(name, "stub")
                report.add("q", 1, 1)
                return report
            return runner

        stubbed = {name: (desc, stub_for(name))
                   for name, (desc, _r) in registry.EXPERIMENTS.items()}
        monkeypatch.setattr(registry, "EXPERIMENTS", stubbed)
        assert main(["experiment", "all"]) == 0
        assert invoked == list(stubbed)
        out = capsys.readouterr().out
        assert out.count("== ") == len(stubbed)


class TestSoakCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["soak"])
        assert args.command == "soak"
        assert args.minutes == 120
        assert args.machines == 8
        assert args.kill_every == 900
        assert args.outage == 60
        assert args.store is None

    def test_soak_smoke_passes_and_writes_artifacts(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "soak.json"
        store = tmp_path / "store"
        code = main(["soak", "--minutes", "15", "--machines", "3",
                     "--kill-every", "400", "--outage", "20",
                     "--store", str(store),
                     "--report-json", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "result: PASS" in out
        data = json.loads(report_path.read_text())
        assert data["passed"] is True
        assert data["restarts"] == 2
        assert data["kill_ticks"] == [400, 800]
        assert (store / "wal.jsonl").exists()
        assert (store / "snapshot.json").exists()
