"""Unit tests for repro.core.config — Table 2 fidelity."""

import pytest

from repro.core.config import DEFAULT_CONFIG, CpiConfig


class TestTable2Defaults:
    """Every default must match the paper's Table 2 verbatim."""

    def test_sampling(self):
        assert DEFAULT_CONFIG.sampling_duration == 10
        assert DEFAULT_CONFIG.sampling_period == 60

    def test_aggregation(self):
        assert DEFAULT_CONFIG.spec_refresh_period == 24 * 3600

    def test_outlier_thresholds(self):
        assert DEFAULT_CONFIG.outlier_stddevs == 2.0
        assert DEFAULT_CONFIG.min_cpu_usage == 0.25
        assert DEFAULT_CONFIG.anomaly_violations == 3
        assert DEFAULT_CONFIG.anomaly_window == 300

    def test_correlation(self):
        assert DEFAULT_CONFIG.correlation_threshold == 0.35
        assert DEFAULT_CONFIG.correlation_window == 600

    def test_hard_capping(self):
        assert DEFAULT_CONFIG.hardcap_quota_batch == 0.1
        assert DEFAULT_CONFIG.hardcap_quota_best_effort == 0.01
        assert DEFAULT_CONFIG.hardcap_duration == 300

    def test_section31_gates(self):
        assert DEFAULT_CONFIG.min_tasks_for_spec == 5
        assert DEFAULT_CONFIG.min_samples_per_task == 100
        assert DEFAULT_CONFIG.history_age_weight == pytest.approx(0.9)


class TestOverridesAndValidation:
    def test_with_overrides_returns_copy(self):
        fast = DEFAULT_CONFIG.with_overrides(spec_refresh_period=3600)
        assert fast.spec_refresh_period == 3600
        assert DEFAULT_CONFIG.spec_refresh_period == 24 * 3600
        assert fast.correlation_threshold == DEFAULT_CONFIG.correlation_threshold

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.outlier_stddevs = 3.0

    @pytest.mark.parametrize("field,value", [
        ("sampling_duration", 0),
        ("anomaly_violations", 0),
        ("hardcap_duration", 0),
        ("min_cpu_usage", -0.1),
        ("history_age_weight", 1.5),
        ("correlation_threshold", 2.0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            CpiConfig(**{field: value})

    def test_period_must_cover_duration(self):
        with pytest.raises(ValueError, match="sampling_period"):
            CpiConfig(sampling_duration=70, sampling_period=60)
