"""Tests for the fleet health console.

The console renders from plain data, sorted, with no live-object access —
that purity is what lets the shard coordinator rebuild the byte-identical
scoreboard from worker summaries, so these tests pin the exact rendering.
"""

from __future__ import annotations

import json

from repro.obs.console import FleetConsole, MachineHealth, build_console


def _row(**overrides):
    base = dict(machine="m0", seconds=3600, anomalies=0, caps_active=0,
                degraded=False, crashes=0, faults={})
    base.update(overrides)
    return MachineHealth(**base)


def test_machine_health_derived_fields():
    row = _row(anomalies=30, seconds=1800, faults={"drop": 3, "delay": 4},
               crashes=2, degraded=True)
    assert row.anomaly_rate_per_hour == 60.0
    assert row.fault_total == 7
    assert row.flags() == "DEGRADED crashed x2"
    assert _row().flags() == "ok"
    assert _row(seconds=0, anomalies=5).anomaly_rate_per_hour == 0.0
    payload = row.to_dict()
    assert payload["anomaly_rate_per_hour"] == 60.0
    assert payload["faults"] == {"delay": 4, "drop": 3}


def test_render_golden():
    console = FleetConsole(
        machines=[
            _row(machine="m0", anomalies=75),
            _row(machine="m1", crashes=2, faults={"drop": 4},
                 degraded=True),
        ],
        alerts_fired={"agent_crash_storm": 2},
        alerts_active=["agent_crash_storm"],
        scrapes=60,
    )
    assert console.render() == """\
== fleet console ==
  machine  anomalies  rate/h  caps  crashes  faults  status
  -------  ---------  ------  ----  -------  ------  -------------------
  m0       75         75.00   0     0        0       ok
  m1       0          0.00    0     2        4       DEGRADED crashed x2
  fleet: 2 machines, 1 degraded, 75 anomalies, 4 faults injected
  alerts fired: agent_crash_storm x2
  alerts still active: agent_crash_storm
  telemetry: 60 scrapes"""


def test_render_quiet_fleet():
    text = FleetConsole(machines=[_row()]).render()
    assert "alerts fired: none" in text
    assert "alerts still active" not in text
    assert "telemetry: 0 scrapes" in text


def test_to_json_is_sorted_and_parseable():
    console = FleetConsole(
        machines=[_row(machine="m1"), _row(machine="m0")],
        alerts_fired={"b": 1, "a": 2}, alerts_active=["z", "a"], scrapes=3)
    payload = json.loads(console.to_json())
    assert list(payload["alerts_fired"]) == ["a", "b"]
    assert payload["alerts_active"] == ["a", "z"]
    assert payload["scrapes"] == 3
    # machines keep list order from the caller; build_console sorts them.
    assert [m["machine"] for m in payload["machines"]] == ["m1", "m0"]


def test_build_console_sorts_and_defaults():
    console = build_console(
        {"m1": {"anomalies": 3, "faults": {"drop": 1}},
         "m0": {"degraded": True, "crashes": 1, "caps_active": 2}},
        seconds=7200, alerts_fired={"x": 1}, scrapes=120)
    assert [m.machine for m in console.machines] == ["m0", "m1"]
    m0, m1 = console.machines
    assert (m0.degraded, m0.crashes, m0.caps_active) == (True, 1, 2)
    assert (m1.anomalies, m1.faults) == (3, {"drop": 1})
    assert m0.seconds == m1.seconds == 7200
    assert console.alerts_fired == {"x": 1}
    assert console.scrapes == 120
