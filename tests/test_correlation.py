"""Unit tests for repro.core.correlation (the Section 4.2 formula)."""

import pytest

from repro.core.correlation import (
    antagonist_correlation,
    rank_suspects,
    top_suspects,
    SuspectScore,
)


class TestFormula:
    def test_guilty_pattern_scores_positive(self):
        # Victim CPI spikes exactly when the suspect runs.
        victim = [2.0, 1.0, 2.0, 1.0]
        usage = [1.0, 0.0, 1.0, 0.0]
        score = antagonist_correlation(victim, usage, cpi_threshold=1.5)
        # All usage mass sits on c=2.0 > threshold: score = 1 - 1.5/2.0
        assert score == pytest.approx(0.25)

    def test_innocent_pattern_scores_negative(self):
        # Suspect runs only while the victim is fine.
        victim = [2.0, 1.0, 2.0, 1.0]
        usage = [0.0, 1.0, 0.0, 1.0]
        score = antagonist_correlation(victim, usage, cpi_threshold=1.5)
        # All mass on c=1.0 < threshold: score = 1.0/1.5 - 1
        assert score == pytest.approx(1.0 / 1.5 - 1.0)

    def test_exactly_at_threshold_contributes_nothing(self):
        score = antagonist_correlation([1.5, 1.5], [0.5, 0.5], 1.5)
        assert score == 0.0

    def test_idle_suspect_scores_zero(self):
        assert antagonist_correlation([2.0, 2.0], [0.0, 0.0], 1.5) == 0.0

    def test_range_bounds(self):
        # Victim CPI -> infinity with all suspect mass there: score -> 1.
        score = antagonist_correlation([1e9], [1.0], 1.5)
        assert 0.99 < score <= 1.0
        # Victim CPI -> 0 with all suspect mass there: score -> -1.
        score = antagonist_correlation([1e-9], [1.0], 1.5)
        assert -1.0 <= score < -0.99

    def test_usage_normalisation(self):
        # Scaling the usage series must not change the score.
        victim = [2.0, 1.0, 1.8, 0.9]
        usage = [1.0, 0.2, 0.8, 0.1]
        s1 = antagonist_correlation(victim, usage, 1.5)
        s2 = antagonist_correlation(victim, [10 * u for u in usage], 1.5)
        assert s1 == pytest.approx(s2)

    def test_mixed_evidence_cancels(self):
        # Equal usage mass on one guilty and one exonerating point.
        victim = [3.0, 0.75]
        usage = [0.5, 0.5]
        expected = 0.5 * (1 - 1.5 / 3.0) + 0.5 * (0.75 / 1.5 - 1)
        assert antagonist_correlation(victim, usage, 1.5) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError, match="lengths"):
            antagonist_correlation([1.0], [1.0, 2.0], 1.5)
        with pytest.raises(ValueError, match="empty"):
            antagonist_correlation([], [], 1.5)
        with pytest.raises(ValueError, match="threshold"):
            antagonist_correlation([1.0], [1.0], 0.0)
        with pytest.raises(ValueError, match="usage"):
            antagonist_correlation([1.0], [-1.0], 1.5)
        with pytest.raises(ValueError, match="CPI"):
            antagonist_correlation([-1.0], [1.0], 1.5)


class TestRanking:
    def test_rank_orders_by_correlation(self):
        victim = [2.0, 1.0, 2.0, 1.0]
        suspects = {
            "guilty/0": ("guilty", [1.0, 0.0, 1.0, 0.0]),
            "innocent/0": ("innocent", [0.0, 1.0, 0.0, 1.0]),
            "steady/0": ("steady", [0.5, 0.5, 0.5, 0.5]),
        }
        ranked = rank_suspects(victim, 1.5, suspects)
        assert [s.taskname for s in ranked] == ["guilty/0", "steady/0",
                                                "innocent/0"]
        assert ranked[0].jobname == "guilty"

    def test_deterministic_tie_break(self):
        victim = [2.0, 2.0]
        suspects = {
            "b/0": ("b", [1.0, 1.0]),
            "a/0": ("a", [1.0, 1.0]),
        }
        ranked = rank_suspects(victim, 1.5, suspects)
        assert [s.taskname for s in ranked] == ["a/0", "b/0"]

    def test_empty_suspects(self):
        assert rank_suspects([2.0], 1.5, {}) == []


class TestTopSuspects:
    def test_limit(self):
        scores = [SuspectScore(f"t{i}", "j", 0.1 * i) for i in range(10)]
        top = top_suspects(scores, limit=5)
        assert len(top) == 5
        assert top[0].correlation == pytest.approx(0.9)

    def test_threshold_filter(self):
        scores = [SuspectScore("a", "j", 0.5), SuspectScore("b", "j", 0.2)]
        top = top_suspects(scores, limit=5, threshold=0.35)
        assert [s.taskname for s in top] == ["a"]

    def test_meets(self):
        assert SuspectScore("a", "j", 0.35).meets(0.35)
        assert not SuspectScore("a", "j", 0.349).meets(0.35)

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            top_suspects([], limit=0)
