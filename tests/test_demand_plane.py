"""The vectorized demand plane vs the scalar closure reference.

Three layers of pinning:

* **Hypothesis property tests** — every compiled demand kind (constant,
  on_off/bimodal, phased, ramp, scaled, with_noise, and nested
  compositions) matches its closure bit-for-bit (float hex) over
  adversarial ``t`` ranges, phases, durations and noise seeds.
* **Eligibility** — anything the compiler can't express (opaque lambdas,
  overridden ``cpu_demand``, subclassed cgroups, shared cgroups,
  non-finite parameters) steps the machine down to the closure path, and
  that machine still ticks identically to a scalar-engine twin.
* **End-to-end golden parity** — ``REPRO_DEMAND_ENGINE=scalar`` vs
  ``vector`` on the scale scenario (clean, sharded at 1/2/4 workers) and
  the chaos scenario (moderate faults, caps actually applied), compared
  through the same hex-canonical forms the shard golden tests use.

Plus regression tests for the NaN-clamp unification (``scaled`` /
``with_noise`` / ``SyntheticWorkload.cpu_demand`` all treat non-finite
demand as zero) and the deferred charge ledger (every cgroup read sees
flushed state).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cgroup import Cgroup
from repro.cluster.demandplane import (DEMAND_ENGINE_ENV, DEMAND_ENGINES,
                                       DemandColumns, resolve_demand_engine)
from repro.cluster.job import Job, JobSpec
from repro.cluster.machine import Machine
from repro.cluster.platform import get_platform
from repro.cluster.shards import run_sharded
from repro.cluster.task import PriorityBand, SchedulingClass, TaskState
from repro.core.config import CpiConfig
from repro.experiments.chaos import chaos_scenario
from repro.experiments.scenarios import scale_scenario
from repro.testing import QUIET_PROFILE, ScriptedWorkload, make_scripted_job
from repro.workloads.base import SyntheticWorkload
from repro.workloads.demand import (ConstantSpec, NoiseSpec, OnOffSpec,
                                    PhasedSpec, RampSpec, ScaledSpec, bimodal,
                                    constant, demand_spec, on_off, phased,
                                    ramp, scaled, with_noise)
from repro.workloads.diurnal import DiurnalPattern

# ---------------------------------------------------------------------------
# helpers


def _hex(x) -> str:
    return float(x).hex()


def _workload(fn) -> SyntheticWorkload:
    return SyntheticWorkload(base_cpi=1.0, profile=QUIET_PROFILE, demand=fn)


def _compile_one(fn):
    """Compile a single-task table around ``fn`` (huge limit: no clipping)."""
    w = _workload(fn)
    cg = Cgroup("t/0", 1e12)
    return DemandColumns.compile([w], [cg], [cg.cpu_limit])


def _assert_kind_parity(factory, ts):
    """``factory()`` builds the same demand fn twice (fresh identically
    seeded RNGs each call); closure and compiled evaluations must agree
    bit-for-bit at every ``t``."""
    scalar_w = _workload(factory())
    dc = _compile_one(factory())
    assert dc is not None, "expected the demand fn to compile"
    for t in ts:
        expected = scalar_w.cpu_demand(t)
        got = float(dc.demand(t)[0])
        assert _hex(got) == _hex(expected), (
            f"t={t}: compiled {got!r} != closure {expected!r}")


_LEVELS = st.floats(min_value=0.0, max_value=1e9,
                    allow_nan=False, allow_infinity=False)
_TS = st.lists(st.integers(min_value=0, max_value=2**40),
               min_size=8, max_size=32)

# ---------------------------------------------------------------------------
# hypothesis property tests: compiled == closure, bit for bit


class TestCompiledKindParity:
    @settings(max_examples=50, deadline=None)
    @given(level=_LEVELS, ts=_TS)
    def test_constant(self, level, ts):
        _assert_kind_parity(lambda: constant(level), ts)

    @settings(max_examples=50, deadline=None)
    @given(on=_LEVELS, off=_LEVELS,
           period=st.integers(1, 10_000_000),
           duty=st.floats(0.0, 1.0),
           phase=st.integers(0, 10**9), ts=_TS)
    def test_on_off(self, on, off, period, duty, phase, ts):
        _assert_kind_parity(
            lambda: on_off(on, off, period, duty=duty, phase=phase), ts)

    @settings(max_examples=50, deadline=None)
    @given(low=_LEVELS, high=_LEVELS, period=st.integers(1, 100_000),
           frac=st.floats(0.0, 1.0), phase=st.integers(0, 10**6), ts=_TS)
    def test_bimodal(self, low, high, period, frac, phase, ts):
        _assert_kind_parity(
            lambda: bimodal(low, high, period, low_fraction=frac,
                            phase=phase), ts)

    @settings(max_examples=50, deadline=None)
    @given(segments=st.lists(
               st.tuples(st.integers(1, 100_000), _LEVELS),
               min_size=1, max_size=20),
           cycle=st.booleans(), ts=_TS)
    def test_phased(self, segments, cycle, ts):
        _assert_kind_parity(lambda: phased(segments, cycle=cycle), ts)

    @settings(max_examples=50, deadline=None)
    @given(start=_LEVELS, end=_LEVELS,
           duration=st.integers(1, 10_000_000), ts=_TS)
    def test_ramp(self, start, end, duration, ts):
        _assert_kind_parity(lambda: ramp(start, end, duration), ts)

    @settings(max_examples=50, deadline=None)
    @given(level=_LEVELS, amplitude=st.floats(0.0, 0.99),
           peak=st.floats(0.0, 23.99), ts=_TS)
    def test_scaled_diurnal(self, level, amplitude, peak, ts):
        _assert_kind_parity(
            lambda: scaled(constant(level),
                           DiurnalPattern(amplitude, peak_hour=peak)), ts)

    @settings(max_examples=25, deadline=None)
    @given(level=_LEVELS, a1=st.floats(0.0, 0.99), a2=st.floats(0.0, 0.99),
           ts=_TS)
    def test_nested_scaled(self, level, a1, a2, ts):
        _assert_kind_parity(
            lambda: scaled(scaled(constant(level), DiurnalPattern(a1)),
                           DiurnalPattern(a2)), ts)

    @settings(max_examples=50, deadline=None)
    @given(level=_LEVELS, sigma=st.floats(0.0, 2.0), seed=st.integers(0, 2**31),
           ts=_TS)
    def test_noise_over_constant(self, level, sigma, seed, ts):
        _assert_kind_parity(
            lambda: with_noise(constant(level), sigma,
                               np.random.default_rng(seed)), ts)

    @settings(max_examples=25, deadline=None)
    @given(on=_LEVELS, off=_LEVELS, period=st.integers(1, 100_000),
           sigma=st.floats(0.0, 1.0), seed=st.integers(0, 2**31), ts=_TS)
    def test_noise_over_on_off(self, on, off, period, sigma, seed, ts):
        _assert_kind_parity(
            lambda: with_noise(on_off(on, off, period), sigma,
                               np.random.default_rng(seed)), ts)

    @settings(max_examples=25, deadline=None)
    @given(level=_LEVELS, amp=st.floats(0.0, 0.99), sigma=st.floats(0.0, 1.0),
           seed=st.integers(0, 2**31), ts=_TS)
    def test_noise_over_scaled(self, level, amp, sigma, seed, ts):
        _assert_kind_parity(
            lambda: with_noise(scaled(constant(level), DiurnalPattern(amp)),
                               sigma, np.random.default_rng(seed)), ts)

    def test_mixed_table_draws_in_table_order(self):
        """Noise draws must come from each task's own generator in table
        order even when non-noisy tasks are interleaved."""
        def build():
            return [
                with_noise(constant(1.0), 0.1, np.random.default_rng(1)),
                constant(2.0),
                with_noise(on_off(3.0, 0.5, 60), 0.2,
                           np.random.default_rng(2)),
                phased([(10, 1.0), (20, 4.0)]),
                with_noise(constant(0.7), 0.3, np.random.default_rng(3)),
            ]
        scalar_ws = [_workload(fn) for fn in build()]
        compiled_ws = [_workload(fn) for fn in build()]
        cgs = [Cgroup(f"t/{i}", 1e12) for i in range(len(compiled_ws))]
        dc = DemandColumns.compile(compiled_ws, cgs,
                                   [cg.cpu_limit for cg in cgs])
        assert dc is not None
        for t in range(0, 500, 7):
            expected = [w.cpu_demand(t) for w in scalar_ws]
            got = dc.demand(t).tolist()
            assert [_hex(g) for g in got] == [_hex(e) for e in expected]


# ---------------------------------------------------------------------------
# spec forms


class TestSpecs:
    def test_combinators_carry_specs(self):
        assert demand_spec(constant(1.0)) == ConstantSpec(1.0)
        assert demand_spec(on_off(2.0, 0.5, 60, duty=0.25, phase=7)) == \
            OnOffSpec(2.0, 0.5, 60, 0.25 * 60, 7)
        assert demand_spec(phased([(10, 1.0), (5, 2.0)])) == \
            PhasedSpec((10, 15), (1.0, 2.0), 15, True)
        assert demand_spec(ramp(0.0, 4.0, 100)) == RampSpec(0.0, 4.0, 100)
        pat = DiurnalPattern(0.2)
        spec = demand_spec(scaled(constant(1.0), pat))
        assert isinstance(spec, ScaledSpec)
        assert spec.base == ConstantSpec(1.0) and spec.factor is pat
        rng = np.random.default_rng(0)
        nspec = demand_spec(with_noise(constant(1.0), 0.1, rng))
        assert isinstance(nspec, NoiseSpec)
        assert nspec.sigma == 0.1 and nspec.rng is rng

    def test_zero_sigma_noise_keeps_base_spec(self):
        fn = with_noise(constant(3.0), 0.0, np.random.default_rng(0))
        assert demand_spec(fn) == ConstantSpec(3.0)

    def test_opaque_lambda_has_no_spec(self):
        assert demand_spec(lambda t: 1.0) is None


# ---------------------------------------------------------------------------
# eligibility fallback


class TestEligibility:
    def test_opaque_demand_fn_is_ineligible(self):
        assert _compile_one(lambda t: 1.0) is None

    def test_speccless_scale_factor_is_ineligible(self):
        assert _compile_one(scaled(constant(1.0), lambda t: 2.0)) is None

    def test_overridden_cpu_demand_is_ineligible(self):
        class Custom(SyntheticWorkload):
            def cpu_demand(self, t):
                return 1.0

        w = Custom(base_cpi=1.0, profile=QUIET_PROFILE, demand=constant(1.0))
        cg = Cgroup("t/0", 4.0)
        assert DemandColumns.compile([w], [cg], [4.0]) is None

    def test_subclassed_cgroup_is_ineligible(self):
        class FancyCgroup(Cgroup):
            pass

        w = _workload(constant(1.0))
        cg = FancyCgroup("t/0", 4.0)
        assert DemandColumns.compile([w], [cg], [4.0]) is None

    def test_shared_cgroup_is_ineligible(self):
        ws = [_workload(constant(1.0)), _workload(constant(2.0))]
        cg = Cgroup("t/0", 4.0)
        assert DemandColumns.compile(ws, [cg, cg], [4.0, 4.0]) is None

    def test_non_finite_parameters_are_ineligible(self):
        assert _compile_one(constant(float("nan"))) is None
        assert _compile_one(constant(float("inf"))) is None
        assert _compile_one(
            with_noise(constant(1.0), float("nan"),
                       np.random.default_rng(0))) is None

    def test_machine_steps_down_and_matches_scalar_engine(self):
        """A machine whose table can't compile still ticks bit-identically
        to a scalar-engine twin (the closure path is shared)."""
        def build(engine):
            m = Machine("m0", get_platform("westmere-2.6"),
                        cpi_noise_sigma=0.03, demand_engine=engine)
            spec = JobSpec(
                name="odd", num_tasks=3,
                scheduling_class=SchedulingClass.LATENCY_SENSITIVE,
                priority_band=PriorityBand.PRODUCTION,
                cpu_limit_per_task=2.0,
                workload_factory=lambda i: SyntheticWorkload(
                    base_cpi=1.0, profile=QUIET_PROFILE,
                    demand=lambda t, i=i: 0.5 + 0.1 * i))
            for task in Job(spec):
                m.place(task)
            return m

        mv = build("vector")
        ms = build("scalar")
        assert mv._task_table().demand_columns is None
        for t in range(50):
            rv = mv.tick(t)
            rs = ms.tick(t)
            assert rv.grants == rs.grants and rv.cpis == rs.cpis


# ---------------------------------------------------------------------------
# chunked draw prefetch (private noise generators)


def _noisy_machine(engine: str, num: int = 4) -> Machine:
    """A machine of noisy tasks whose generators are private to their
    ``with_noise`` closures (constructed inline, no other reference), so
    the vector engine is allowed to install chunked draw streams."""
    m = Machine("m0", get_platform("westmere-2.6"), cpi_noise_sigma=0.0,
                demand_engine=engine)
    spec = JobSpec(
        name="svc", num_tasks=num,
        scheduling_class=SchedulingClass.LATENCY_SENSITIVE,
        priority_band=PriorityBand.PRODUCTION,
        cpu_limit_per_task=2.0,
        workload_factory=lambda i: SyntheticWorkload(
            base_cpi=1.0, profile=QUIET_PROFILE,
            demand=with_noise(constant(0.5 + 0.1 * i), 0.1,
                              np.random.default_rng(
                                  np.random.SeedSequence((7, i))))))
    for task in Job(spec):
        m.place(task)
    return m


def _assert_tick_parity(mv: Machine, ms: Machine, ts) -> None:
    for t in ts:
        rv = mv.tick(t)
        rs = ms.tick(t)
        assert ({k: _hex(v) for k, v in rv.grants.items()}
                == {k: _hex(v) for k, v in rs.grants.items()}), f"t={t}"


class TestDrawPrefetch:
    def test_chunked_stream_matches_scalar_draws(self):
        from repro.cluster.demandplane import _chunked_stream
        it = _chunked_stream(np.random.default_rng(5))
        ref = np.random.default_rng(5)
        for _ in range(600):        # crosses two chunk refills
            assert _hex(next(it)) == _hex(ref.standard_normal())

    def test_private_rng_gets_stream_and_matches_scalar(self):
        """A private generator is bulk-drawn in chunks; grants stay
        bit-identical to the scalar engine across refill boundaries."""
        from repro.cluster.demandplane import _DRAW_CHUNK
        mv = _noisy_machine("vector")
        ms = _noisy_machine("scalar")
        assert mv._task_table().demand_columns is not None
        w = next(iter(mv._tasks.values())).workload
        assert w._demand.spec.stream[0] is not None, "stream not installed"
        _assert_tick_parity(mv, ms, range(2 * _DRAW_CHUNK + 16))

    def test_shared_rng_keeps_per_tick_draws(self):
        """A generator someone else can reach must not be prefetched —
        another consumer could interleave draws between ticks."""
        rng = np.random.default_rng(3)      # this reference makes it shared
        fn = with_noise(constant(1.0), 0.1, rng)
        dc = _compile_one(fn)
        assert dc is not None
        assert fn.spec.stream[0] is None
        ref = np.random.default_rng(3)
        for t in range(20):
            got = float(dc.demand(t)[0])
            expected = 1.0 * float(np.exp(0.1 * ref.standard_normal()))
            assert _hex(got) == _hex(max(0.0, expected))

    def test_stream_survives_recompile(self):
        """Removing a task recompiles the table; the surviving tasks'
        stream positions must carry over (they live on the specs)."""
        mv = _noisy_machine("vector")
        ms = _noisy_machine("scalar")
        _assert_tick_parity(mv, ms, range(40))
        victim = sorted(mv._tasks)[1]
        mv.remove(victim, TaskState.EXITED, reason="test")
        ms.remove(victim, TaskState.EXITED, reason="test")
        _assert_tick_parity(mv, ms, range(40, 120))

    def test_closure_continues_stream_after_step_down(self):
        """If the table turns ineligible after streams were installed, the
        closure path keeps consuming the same iterators, so the values
        still match a scalar twin draw for draw."""
        mv = _noisy_machine("vector")
        ms = _noisy_machine("scalar")
        _assert_tick_parity(mv, ms, range(40))

        def opaque_job():
            return JobSpec(
                name="opaque", num_tasks=1,
                scheduling_class=SchedulingClass.BATCH,
                priority_band=PriorityBand.NONPRODUCTION,
                cpu_limit_per_task=1.0,
                workload_factory=lambda i: SyntheticWorkload(
                    base_cpi=1.0, profile=QUIET_PROFILE,
                    demand=lambda t: 0.3))

        for task in Job(opaque_job()):
            mv.place(task)
        for task in Job(opaque_job()):
            ms.place(task)
        assert mv._task_table().demand_columns is None
        _assert_tick_parity(mv, ms, range(40, 120))


# ---------------------------------------------------------------------------
# NaN-clamp regression (satellite 2)


class TestNaNClamp:
    def test_scaled_clamps_nan_factor(self):
        fn = scaled(constant(1.0), lambda t: float("nan"))
        assert fn(5) == 0.0

    def test_scaled_clamps_negative_product(self):
        fn = scaled(constant(1.0), lambda t: -3.0)
        assert fn(5) == 0.0

    def test_with_noise_clamps_nan_base(self):
        fn = with_noise(lambda t: float("nan"), 0.1,
                        np.random.default_rng(0))
        assert fn(5) == 0.0

    def test_cpu_demand_clamps_nan(self):
        w = SyntheticWorkload(base_cpi=1.0, profile=QUIET_PROFILE,
                              demand=lambda t: float("nan"))
        assert w.cpu_demand(5) == 0.0
        w2 = SyntheticWorkload(base_cpi=1.0, profile=QUIET_PROFILE,
                               demand=lambda t: -1.0)
        assert w2.cpu_demand(5) == 0.0


# ---------------------------------------------------------------------------
# engine selection


class TestEngineSelection:
    def test_resolve_explicit(self):
        assert resolve_demand_engine("scalar") == "scalar"
        assert resolve_demand_engine("vector") == "vector"

    def test_resolve_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(DEMAND_ENGINE_ENV, raising=False)
        assert resolve_demand_engine() == "vector"

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv(DEMAND_ENGINE_ENV, "scalar")
        assert resolve_demand_engine() == "scalar"
        assert resolve_demand_engine("vector") == "vector"  # explicit wins

    def test_resolve_rejects_unknown(self, monkeypatch):
        with pytest.raises(ValueError, match="demand engine"):
            resolve_demand_engine("turbo")
        monkeypatch.setenv(DEMAND_ENGINE_ENV, "bogus")
        with pytest.raises(ValueError, match="demand engine"):
            resolve_demand_engine()

    def test_machine_rejects_unknown(self):
        from repro.cluster.platform import get_platform
        with pytest.raises(ValueError, match="demand engine"):
            Machine("m0", get_platform("westmere-2.6"),
                    demand_engine="turbo")

    def test_engines_tuple(self):
        assert DEMAND_ENGINES == ("vector", "scalar")


# ---------------------------------------------------------------------------
# charge ledger


class TestChargeLedger:
    def _machine(self, engine="vector"):
        m = Machine("m0", get_platform("westmere-2.6"), cpi_noise_sigma=0.0,
                    demand_engine=engine)
        spec = JobSpec(
            name="svc", num_tasks=2,
            scheduling_class=SchedulingClass.LATENCY_SENSITIVE,
            priority_band=PriorityBand.PRODUCTION,
            cpu_limit_per_task=2.0,
            workload_factory=lambda i: _workload(constant(0.5 + 0.25 * i)))
        tasks = list(Job(spec))
        for task in tasks:
            m.place(task)
        return m, tasks

    def test_reads_flush_mid_chunk(self):
        """total / last_usage / usage_between / window views all see charges
        buffered by the ledger, at any point inside a chunk."""
        mv, tv = self._machine("vector")
        ms, ts_ = self._machine("scalar")
        for t in range(37):     # well inside the 128-tick chunk
            mv.tick(t)
            ms.tick(t)
        for a, b in zip(tv, ts_):
            assert a.cgroup.total_cpu_seconds == b.cgroup.total_cpu_seconds
            assert a.cgroup.last_usage() == b.cgroup.last_usage()
            assert a.cgroup.usage_between(10, 30) == \
                b.cgroup.usage_between(10, 30)
            va = a.cgroup.usage_window_view(0, 37)
            vb = b.cgroup.usage_window_view(0, 37)
            assert va is not None and vb is not None
            assert va.tolist() == vb.tolist()

    def test_long_run_crosses_chunk_boundaries(self):
        mv, tv = self._machine("vector")
        ms, ts_ = self._machine("scalar")
        for t in range(300):    # > 2 chunks of 128
            mv.tick(t)
            ms.tick(t)
        for a, b in zip(tv, ts_):
            assert _hex(a.cgroup.total_cpu_seconds) == \
                _hex(b.cgroup.total_cpu_seconds)
            assert a.cgroup.usage_between(120, 260) == \
                b.cgroup.usage_between(120, 260)

    def test_placement_change_flushes(self):
        mv, tasks = self._machine("vector")
        for t in range(10):
            mv.tick(t)
        mv.remove(tasks[0].name, TaskState.KILLED, reason="test")
        # The removed task's cgroup must have all 10 charges.
        assert len(tasks[0].cgroup._usage_history) == 10

    def test_departure_mid_run_stays_consistent(self):
        """ScriptedWorkload is not a SyntheticWorkload, so its machine
        takes the closure path end to end; its timed exits must still
        match the scalar engine exactly."""
        def build(engine):
            m = Machine("m0", get_platform("westmere-2.6"),
                        cpi_noise_sigma=0.0, demand_engine=engine)
            job = make_scripted_job("scripted", [1.0, 2.0, 0.5],
                                    num_tasks=3, exit_at=25)
            for task in job:
                m.place(task)
            return m

        mv, ms = build("vector"), build("scalar")
        assert mv._task_table().demand_columns is None
        for t in range(40):
            rv, rs = mv.tick(t), ms.tick(t)
            assert rv.grants == rs.grants
            assert [(task.name, s) for task, s in rv.departures] == \
                [(task.name, s) for task, s in rs.departures]
        assert mv.num_tasks == ms.num_tasks == 0

    def test_mapreduce_departures_with_compiled_demand(self):
        """MapReduceWorker demand (noise over constant) compiles, but its
        overridden on_tick disables the batched accounting: departures
        must still fire exactly as on the scalar engine."""
        from repro.workloads.batch import make_mapreduce_job_spec

        def build(engine):
            m = Machine("m0", get_platform("westmere-2.6"),
                        cpi_noise_sigma=0.0, demand_engine=engine)
            spec = make_mapreduce_job_spec("mr", num_workers=4, seed=3,
                                           work_cpu_seconds=40.0,
                                           give_up_episode=2)
            for task in Job(spec):
                m.place(task)
            return m

        mv, ms = build("vector"), build("scalar")
        dc = mv._task_table().demand_columns
        assert dc is not None and not dc.batch_on_tick
        departures_v, departures_s = [], []
        for t in range(400):
            departures_v += [(task.name, s) for task, s in
                             mv.tick(t).departures]
            departures_s += [(task.name, s) for task, s in
                             ms.tick(t).departures]
        assert departures_v == departures_s
        assert len(departures_v) == 4          # every worker finished
        assert mv.num_tasks == ms.num_tasks == 0


# ---------------------------------------------------------------------------
# end-to-end golden parity, scalar vs vector engine


_SCALE_KWARGS = dict(num_machines=6, seed=11, num_service_jobs=2,
                     num_batch_jobs=2, tasks_per_job=6,
                     config=CpiConfig(spec_refresh_period=600,
                                      min_samples_per_task=5))

_CHAOS_KWARGS = dict(seed=0, num_machines=4, fault_profile="moderate",
                     fault_seed=1)


def _canon_samples(samples):
    return [(s.jobname, s.platforminfo, s.timestamp, _hex(s.cpu_usage),
             _hex(s.cpi), s.taskname) for s in samples]


def _canon_incidents(incidents):
    return [(i.machine, i.time_seconds, i.victim_taskname, i.victim_jobname,
             _hex(i.victim_cpi), _hex(i.cpi_threshold),
             tuple((s.taskname, s.jobname, _hex(s.correlation))
                   for s in i.suspects),
             i.decision.action.value,
             None if i.post_cpi is None else _hex(i.post_cpi), i.recovered)
            for i in incidents]


def _canon_specs(aggregator):
    return sorted(
        (key.jobname, key.platforminfo, spec.num_samples,
         _hex(spec.cpu_usage_mean), _hex(spec.cpi_mean), _hex(spec.cpi_stddev))
        for key, spec in aggregator.specs().items())


def _run_single(builder, kwargs, seconds):
    scenario = builder(**kwargs)
    pipeline = scenario.pipeline
    pipeline.log_samples = True
    scenario.simulation.run(seconds)
    return {
        "samples": _canon_samples(pipeline.sample_log),
        "incidents": _canon_incidents(pipeline.all_incidents()),
        "specs": _canon_specs(pipeline.aggregator),
        "caps": pipeline.obs.metrics.total("caps_applied"),
    }


def _run_sharded(builder, kwargs, seconds, jobs):
    result = run_sharded(builder, kwargs, seconds=seconds, jobs=jobs,
                         log_samples=True)
    return {
        "samples": _canon_samples(result.sample_log),
        "incidents": _canon_incidents(result.all_incidents()),
        "specs": _canon_specs(result.pipeline.aggregator),
        "caps": result.pipeline.obs.metrics.total("caps_applied"),
    }


class TestGoldenEngineParity:
    def test_scale_clean_parity_across_jobs(self, monkeypatch):
        """Clean fleet: scalar reference == vector engine, single-process
        and sharded at 1/2/4 workers, byte for byte."""
        seconds = 1200
        monkeypatch.setenv(DEMAND_ENGINE_ENV, "scalar")
        baseline = _run_single(scale_scenario, _SCALE_KWARGS, seconds)
        assert len(baseline["samples"]) > 300   # not vacuously equal
        monkeypatch.setenv(DEMAND_ENGINE_ENV, "vector")
        assert _run_single(scale_scenario, _SCALE_KWARGS,
                           seconds) == baseline
        for jobs in (1, 2, 4):
            assert _run_sharded(scale_scenario, _SCALE_KWARGS, seconds,
                                jobs) == baseline, f"jobs={jobs}"

    def test_chaos_moderate_parity_across_jobs(self, monkeypatch):
        """Moderate chaos: caps fire and machines churn; sample, incident,
        spec, and cap-counter streams must stay byte-identical."""
        seconds = 2400
        monkeypatch.setenv(DEMAND_ENGINE_ENV, "scalar")
        baseline = _run_single(chaos_scenario, _CHAOS_KWARGS, seconds)
        assert len(baseline["incidents"]) > 0   # detection fired
        assert baseline["caps"] > 0             # caps actually applied
        monkeypatch.setenv(DEMAND_ENGINE_ENV, "vector")
        assert _run_single(chaos_scenario, _CHAOS_KWARGS,
                           seconds) == baseline
        for jobs in (1, 2, 4):
            assert _run_sharded(chaos_scenario, _CHAOS_KWARGS, seconds,
                                jobs) == baseline, f"jobs={jobs}"
