"""Golden-parity tests: aggregator kills and restores must be invisible.

The durability contract (docs/robustness.md): because every aggregator
mutation is WAL-logged before it is applied, a run whose aggregation
service is killed and restored mid-run ends **byte-identical** to the
same run never interrupted — same CPI sample stream, same published
specs, same incidents, same counters — in a single process and at any
shard count.  With a non-zero outage the runs are no longer comparable
to an uninterrupted baseline (uploads are refused and retried), but all
execution modes must still agree with each other exactly.

Reuses the hex-canonical comparison helpers from tests/test_shards.py so
"close enough" can never creep in.
"""

from __future__ import annotations

from repro.cluster.shards import run_sharded
from repro.experiments.chaos import chaos_scenario
from repro.faults.profile import FAULT_PROFILES
from tests.test_shards import (_canon_incidents, _canon_samples, _canon_specs,
                               _counter_totals, _sharded, _single)

#: Mid-run kill schedule: early (before the first spec refresh), middle,
#: and late (after the last barrier-aligned window has closed).
KILL_TICKS = (600, 1800, 2900)

SECONDS = 3600
BASE_KWARGS = dict(seed=0, num_machines=4, fault_seed=1)


def _kwargs(profile_name: str, **overrides) -> dict:
    profile = FAULT_PROFILES[profile_name].with_overrides(**overrides)
    return dict(BASE_KWARGS, fault_profile=profile)


def test_clean_kill_restore_is_byte_identical():
    """No transport faults: kills + same-tick restores change nothing."""
    baseline = _single(chaos_scenario, _kwargs("none"), SECONDS,
                       counters=False)
    assert len(baseline["samples"]) > 0
    assert len(baseline["specs"]) > 0
    killed = _kwargs("none", aggregator_kill_ticks=KILL_TICKS)
    assert _single(chaos_scenario, killed, SECONDS,
                   counters=False) == baseline
    for jobs in (1, 2, 4):
        assert _sharded(chaos_scenario, killed, SECONDS, jobs,
                        counters=False) == baseline, f"jobs={jobs}"


def test_moderate_chaos_kill_restore_is_byte_identical():
    """Kills under moderate chaos: still invisible, counters included."""
    baseline = _single(chaos_scenario, _kwargs("moderate"), SECONDS,
                       counters=True)
    assert baseline["faults"] > 0
    assert len(baseline["incidents"]) > 0
    killed = _kwargs("moderate", aggregator_kill_ticks=KILL_TICKS)
    assert _single(chaos_scenario, killed, SECONDS, counters=True) == baseline
    for jobs in (1, 2, 4):
        assert _sharded(chaos_scenario, killed, SECONDS, jobs,
                        counters=True) == baseline, f"jobs={jobs}"


def test_kill_run_actually_recovers():
    """The parity above is not vacuous: the kill schedule really fires."""
    killed = _kwargs("moderate", aggregator_kill_ticks=KILL_TICKS)
    scenario = chaos_scenario(**killed)
    scenario.simulation.run(SECONDS)
    host = scenario.pipeline.host
    assert host is not None
    assert host.crashes == len(KILL_TICKS)
    assert host.restarts == len(KILL_TICKS)
    assert host.records_replayed > 0
    obs = scenario.pipeline.obs
    assert obs.metrics.total("aggregator_restarts") == len(KILL_TICKS)
    assert obs.metrics.total("wal_replayed_records") == host.records_replayed


def test_outage_reconvergence_identical_across_modes():
    """A real outage (refused uploads) reconverges the same everywhere.

    Machine agents ride the 120 s outage on retry/backoff and redeliver
    once the service is restored; the post-outage state must agree
    byte-for-byte between single-process and 2/4-way sharded execution,
    refusal counts included.
    """
    outage = _kwargs("moderate", aggregator_kill_ticks=(1200,),
                     aggregator_outage_seconds=120)
    baseline = _single(chaos_scenario, outage, SECONDS, counters=True)

    scenario = chaos_scenario(**outage)
    scenario.simulation.run(SECONDS)
    refused = scenario.pipeline.obs.metrics.total("aggregator_batches_refused")
    assert refused > 0                         # the outage really gated
    assert scenario.pipeline.host.restarts == 1

    for jobs in (2, 4):
        result = run_sharded(chaos_scenario, outage, seconds=SECONDS,
                             jobs=jobs, log_samples=True)
        pipeline = result.pipeline
        sharded = {
            "samples": _canon_samples(result.sample_log),
            "incidents": _canon_incidents(result.all_incidents()),
            "specs": _canon_specs(pipeline.aggregator),
            "total": result.total_samples,
            "faults": result.total_faults_injected,
            "counters": _counter_totals(pipeline.obs),
        }
        assert sharded == baseline, f"jobs={jobs}"
        sharded_refused = pipeline.obs.metrics.total(
            "aggregator_batches_refused")
        assert sharded_refused == refused, f"jobs={jobs}"
        assert pipeline.host.restarts == 1, f"jobs={jobs}"
