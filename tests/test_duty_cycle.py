"""Unit tests for duty-cycle modulation (machine mechanism + throttler)."""

import pytest

from repro.cluster.task import SchedulingClass
from repro.core.baselines.duty_cycle import DutyCycleThrottler
from repro.core.config import CpiConfig
from repro.testing import make_quiet_machine, make_scripted_job


def place(machine, name, demand, **kwargs):
    job = make_scripted_job(name, [demand], **kwargs)
    machine.place(job.tasks[0])
    return job.tasks[0]


class TestMachineDutyCycle:
    def test_target_grant_scaled_by_level(self, machine):
        target = place(machine, "t", 4.0, cpu_limit=8.0)
        machine.apply_duty_cycle("t/0", level=0.25, core_share=0.2,
                                 now=0, duration=100)
        result = machine.tick(0)
        assert result.grants["t/0"] == pytest.approx(1.0)

    def test_collateral_on_other_tasks(self, machine):
        place(machine, "t", 4.0, cpu_limit=8.0)
        place(machine, "other", 2.0, cpu_limit=4.0)
        machine.apply_duty_cycle("t/0", level=0.0, core_share=0.5,
                                 now=0, duration=100)
        result = machine.tick(0)
        assert result.grants["t/0"] == 0.0
        # other loses core_share * (1 - level) = 50% of its grant.
        assert result.grants["other/0"] == pytest.approx(1.0)

    def test_expiry(self, machine):
        place(machine, "t", 4.0, cpu_limit=8.0)
        machine.apply_duty_cycle("t/0", level=0.1, core_share=0.2,
                                 now=0, duration=10)
        assert machine.duty_cycle_at(9) is not None
        assert machine.duty_cycle_at(10) is None
        result = machine.tick(10)
        assert result.grants["t/0"] == pytest.approx(4.0)

    def test_clear(self, machine):
        place(machine, "t", 4.0, cpu_limit=8.0)
        machine.apply_duty_cycle("t/0", level=0.1, core_share=0.2,
                                 now=0, duration=100)
        machine.clear_duty_cycle()
        assert machine.duty_cycle_at(0) is None

    def test_validation(self, machine):
        place(machine, "t", 4.0, cpu_limit=8.0)
        with pytest.raises(ValueError, match="level"):
            machine.apply_duty_cycle("t/0", level=1.5, core_share=0.2,
                                     now=0, duration=10)
        with pytest.raises(ValueError, match="core_share"):
            machine.apply_duty_cycle("t/0", level=0.5, core_share=0.0,
                                     now=0, duration=10)
        with pytest.raises(ValueError, match="duration"):
            machine.apply_duty_cycle("t/0", level=0.5, core_share=0.2,
                                     now=0, duration=0)
        with pytest.raises(KeyError, match="no task"):
            machine.apply_duty_cycle("ghost/0", level=0.5, core_share=0.2,
                                     now=0, duration=10)


class TestDutyCycleThrottler:
    def test_level_targets_class_quota(self, machine):
        target = place(machine, "b", 4.0, cpu_limit=8.0,
                       scheduling_class=SchedulingClass.BATCH)
        machine.tick(0)  # establish usage ~4.0
        throttler = DutyCycleThrottler(CpiConfig())
        action = throttler.cap(machine, target, now=1)
        # quota 0.1 over usage 4.0 -> level 0.025, clamped to the 0.05 floor.
        assert action.level == pytest.approx(0.05)
        result = machine.tick(1)
        assert result.grants["b/0"] == pytest.approx(4.0 * 0.05)

    def test_core_share_rounds_up(self, machine):
        target = place(machine, "b", 2.5, cpu_limit=8.0,
                       scheduling_class=SchedulingClass.BATCH)
        machine.tick(0)
        throttler = DutyCycleThrottler(CpiConfig())
        action = throttler.cap(machine, target, now=1)
        # 2.5 CPU -> 3 cores of 24 -> 0.125 of the machine gated.
        assert action.core_share == pytest.approx(3 / 24)

    def test_release(self, machine):
        target = place(machine, "b", 4.0, cpu_limit=8.0,
                       scheduling_class=SchedulingClass.BATCH)
        machine.tick(0)
        throttler = DutyCycleThrottler(CpiConfig())
        throttler.cap(machine, target, now=1)
        throttler.release(machine)
        assert machine.duty_cycle_at(1) is None

    def test_audit_trail(self, machine):
        target = place(machine, "b", 4.0, cpu_limit=8.0,
                       scheduling_class=SchedulingClass.BATCH)
        machine.tick(0)
        throttler = DutyCycleThrottler(CpiConfig())
        throttler.cap(machine, target, now=1)
        assert len(throttler.actions) == 1
        assert throttler.actions[0].taskname == "b/0"

    def test_validation(self):
        with pytest.raises(ValueError, match="min_level"):
            DutyCycleThrottler(min_level=0.0)
