"""Unit tests for repro.experiments.analyses over synthetic trial corpora."""

import math

import pytest

from repro.cluster.task import PriorityBand
from repro.experiments.analyses import (
    cpi_rel_cdfs,
    detection_rates,
    l3_vs_cpi_correlation,
    median_relative_cpi,
    rates_by_cpi_increase,
    rates_by_threshold,
    relative_cpi_by_degradation,
    relative_cpi_by_threshold,
    utilization_correlation,
)
from repro.experiments.trials import TrialResult


def trial(seed=0, band=PriorityBand.PRODUCTION, detected=True, corr=0.5,
          pre=2.0, post=1.0, mean=1.0, std=0.1, util=0.5,
          pre_l3=0.004, post_l3=0.002, has_antagonist=True):
    return TrialResult(
        seed=seed, band=band, has_antagonist=has_antagonist,
        antagonist_kind="x" if has_antagonist else None, num_tenants=6,
        utilization=util, spec_mean=mean, spec_stddev=std,
        anomaly_detected=detected, pre_cpi=pre, top_suspect="a/0",
        top_suspect_job="antagonist", top_correlation=corr,
        picked_true_antagonist=True, post_cpi=post,
        pre_l3_mpi=pre_l3, post_l3_mpi=post_l3)


class TestDetectionRates:
    def test_counts_and_rates(self):
        trials = [
            trial(0, corr=0.5, pre=2.0, post=1.0),   # tp
            trial(1, corr=0.5, pre=2.0, post=2.5),   # fp
            trial(2, corr=0.5, pre=2.0, post=1.95),  # noise
            trial(3, corr=0.2, pre=2.0, post=1.0),   # below threshold
            trial(4, corr=0.9, detected=False),      # no anomaly -> excluded
        ]
        rates = detection_rates(trials, threshold=0.35)
        assert rates.declared == 3
        assert rates.true_positive_rate == pytest.approx(1 / 3)
        assert rates.false_positive_rate == pytest.approx(1 / 3)
        assert rates.noise_rate == pytest.approx(1 / 3)

    def test_empty_declared(self):
        rates = detection_rates([trial(corr=0.1)], threshold=0.35)
        assert rates.declared == 0
        assert rates.true_positive_rate == 0.0

    def test_band_filter(self):
        trials = [trial(0, band=PriorityBand.PRODUCTION, post=1.0),
                  trial(1, band=PriorityBand.NONPRODUCTION, post=2.5)]
        prod = rates_by_threshold(trials, thresholds=(0.35,),
                                  band=PriorityBand.PRODUCTION)[0]
        nonprod = rates_by_threshold(trials, thresholds=(0.35,),
                                     band=PriorityBand.NONPRODUCTION)[0]
        assert prod.true_positive_rate == 1.0
        assert nonprod.false_positive_rate == 1.0

    def test_threshold_sweep_monotone_declared(self):
        trials = [trial(i, corr=0.1 * i) for i in range(10)]
        sweep = rates_by_threshold(trials)
        declared = [r.declared for r in sweep]
        assert declared == sorted(declared, reverse=True)


class TestRelativeCpiByThreshold:
    def test_tp_only(self):
        trials = [trial(0, post=1.0), trial(1, post=2.5)]
        pairs = relative_cpi_by_threshold(trials, thresholds=(0.35,),
                                          band=None)
        assert pairs[0][1] == pytest.approx(0.5)  # only the TP counted

    def test_nan_when_empty(self):
        pairs = relative_cpi_by_threshold([trial(corr=0.0)],
                                          thresholds=(0.35,), band=None)
        assert math.isnan(pairs[0][1])


class TestL3Correlation:
    def test_perfectly_coupled(self):
        trials = [
            trial(i, pre=2.0, post=2.0 * rel, pre_l3=0.004,
                  post_l3=0.004 * rel)
            for i, rel in enumerate((0.3, 0.5, 0.7, 0.9))
        ]
        assert l3_vs_cpi_correlation(trials) == pytest.approx(1.0)

    def test_too_few_raises(self):
        with pytest.raises(ValueError, match="too few"):
            l3_vs_cpi_correlation([trial()])


class TestUtilizationCorrelation:
    def test_independent_near_zero(self):
        trials = [trial(i, util=0.1 * (i % 10), corr=0.5, pre=2.0)
                  for i in range(40)]
        corr_util, cpi_util = utilization_correlation(trials)
        assert abs(corr_util) < 0.2
        assert abs(cpi_util) < 0.2

    def test_too_few_raises(self):
        with pytest.raises(ValueError):
            utilization_correlation([trial()])


class TestCdfSplit:
    def test_populations(self):
        trials = ([trial(i, corr=0.5, pre=3.0) for i in range(5)]
                  + [trial(i + 10, corr=0.1, pre=1.1) for i in range(5)])
        with_ant, without = cpi_rel_cdfs(trials)
        assert with_ant.median() == pytest.approx(3.0)
        assert without.median() == pytest.approx(1.1)

    def test_single_population_raises(self):
        with pytest.raises(ValueError):
            cpi_rel_cdfs([trial(corr=0.5)])


class TestBuckets:
    def test_rates_by_cpi_increase(self):
        trials = [
            trial(0, pre=1.25, post=1.24, mean=1.0, std=0.1),  # 2.5 sigma, noise
            trial(1, pre=2.0, post=1.0, mean=1.0, std=0.1),    # 10 sigma, tp
        ]
        buckets = rates_by_cpi_increase(trials, sigma_buckets=(2.0, 5.0),
                                        band=None)
        assert buckets[0][2] == 1  # one trial in [2, 5)
        assert buckets[0][1] == 0.0
        assert buckets[1][1] == 1.0

    def test_relative_cpi_by_degradation(self):
        trials = [trial(0, pre=1.5, post=0.75), trial(1, pre=3.0, post=1.5)]
        buckets = relative_cpi_by_degradation(trials, buckets=(1.0, 2.0),
                                              band=None)
        assert buckets[0] == (1.0, pytest.approx(0.5), 1)
        assert buckets[1] == (2.0, pytest.approx(0.5), 1)


class TestMedianRelativeCpi:
    def test_includes_all_classes(self):
        trials = [trial(0, post=1.0), trial(1, post=2.5), trial(2, post=2.0)]
        median = median_relative_cpi(trials, band=None)
        assert median == pytest.approx(1.0)  # rels: 0.5, 1.25, 1.0

    def test_predicate(self):
        trials = [trial(0, post=1.0), trial(1, post=2.5)]
        median = median_relative_cpi(trials, band=None,
                                     predicate=lambda t: t.classify() == "tp")
        assert median == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_relative_cpi([trial(corr=0.0)], band=None)


class TestBootstrapCI:
    def test_ci_brackets_point_estimate(self):
        from repro.experiments.analyses import tp_rate_confidence_interval
        trials = ([trial(i, post=1.0) for i in range(30)]      # tps
                  + [trial(i + 100, post=2.5) for i in range(10)])  # fps
        lo, hi = tp_rate_confidence_interval(trials, band=None)
        point = 30 / 40
        assert lo <= point <= hi
        assert 0.0 <= lo < hi <= 1.0

    def test_all_tp_gives_degenerate_interval(self):
        from repro.experiments.analyses import tp_rate_confidence_interval
        trials = [trial(i, post=1.0) for i in range(20)]
        lo, hi = tp_rate_confidence_interval(trials, band=None)
        assert lo == hi == 1.0

    def test_deterministic_given_seed(self):
        from repro.experiments.analyses import tp_rate_confidence_interval
        trials = ([trial(i, post=1.0) for i in range(15)]
                  + [trial(i + 50, post=2.5) for i in range(5)])
        assert (tp_rate_confidence_interval(trials, band=None, seed=1)
                == tp_rate_confidence_interval(trials, band=None, seed=1))

    def test_validation(self):
        from repro.experiments.analyses import tp_rate_confidence_interval
        with pytest.raises(ValueError, match="no trials declared"):
            tp_rate_confidence_interval([trial(corr=0.0)], band=None)
        with pytest.raises(ValueError, match="confidence"):
            tp_rate_confidence_interval([trial()], band=None, confidence=1.0)
        with pytest.raises(ValueError, match="resamples"):
            tp_rate_confidence_interval([trial()], band=None, resamples=5)
