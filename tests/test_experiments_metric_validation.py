"""Small-scale sanity tests for the Section 3 experiment builders.

The benchmarks run these at paper scale; here we run tiny configurations to
pin the API contracts (shapes, determinism, sane ranges) so refactors fail
fast instead of six minutes into a benchmark run.
"""

import pytest

from repro.experiments.metric_validation import (
    cpi_distribution_fits,
    diurnal_cpi,
    latency_vs_cpi_timeseries,
    per_task_latency_correlations,
    representative_cpi_specs,
    tps_vs_ips,
)
from repro.workloads.websearch import SearchTier


class TestTpsVsIps:
    @pytest.fixture(scope="class")
    def series(self):
        return tps_vs_ips(num_tasks=12, hours=0.5, window_seconds=300,
                          seed=3)

    def test_window_count(self, series):
        assert len(series.series_a) == len(series.series_b) == 6

    def test_rates_positive(self, series):
        assert all(v > 0 for v in series.series_a)
        assert all(v > 0 for v in series.series_b)

    def test_correlated_even_at_small_scale(self, series):
        assert series.correlation > 0.5


class TestLatencyVsCpi:
    def test_series_shape_and_positive(self):
        series = latency_vs_cpi_timeseries(num_tasks=4, hours=1.0,
                                           window_seconds=600, seed=3)
        assert len(series.series_a) == 6
        assert all(c > 0 for c in series.series_a)   # CPI
        assert all(l > 0 for l in series.series_b)   # latency ms


class TestPerTaskCorrelations:
    def test_all_tiers_reported(self):
        corrs = per_task_latency_correlations(tasks_per_tier=3, hours=0.75,
                                              seed=3)
        assert set(corrs) == set(SearchTier)
        assert all(-1.0 <= v <= 1.0 for v in corrs.values())


class TestDiurnal:
    def test_bucket_count_and_cv(self):
        result = diurnal_cpi(num_tasks=4, days=0.5, bucket_seconds=3600,
                             seed=3)
        assert len(result.mean_cpi) == 12
        assert result.cv >= 0.0
        assert all(c > 0 for c in result.mean_cpi)


class TestRepresentativeSpecs:
    def test_rows_and_ordering(self):
        rows = representative_cpi_specs(seed=3, minutes=12, scale=0.04)
        assert [name for name, *_ in rows] == ["job-A", "job-B", "job-C"]
        means = [mean for _name, mean, _std, _n in rows]
        assert means == sorted(means)
        for _name, mean, std, tasks in rows:
            assert mean > 0 and std >= 0 and tasks >= 5


class TestDistributionFits:
    def test_all_families_present(self):
        result = cpi_distribution_fits(num_tasks=12, hours=1.0, seed=3)
        assert set(result.fits) == {"normal", "lognormal", "gamma", "gev"}
        assert result.num_samples > 500
        assert result.mean > 0
        assert result.best_family in result.fits
