"""Sanity tests for the fleet, case-study and ablation experiment builders.

The benchmarks assert the paper-shape properties; these tests pin the
faster-to-check contracts (result types, invariants, determinism) so a
refactor that silently breaks an experiment fails in the unit suite, not
ten minutes into a benchmark run.
"""

import pytest

from repro.experiments.ablations import (
    age_weight_sweep,
    anomaly_window_policies,
    group_antagonists,
)
from repro.experiments.casestudies import (
    case3_bimodal_false_alarm,
    case6_mapreduce_exit,
)
from repro.experiments.fleet import machine_occupancy


class TestFleet:
    def test_occupancy_shapes(self):
        result = machine_occupancy(num_machines=6, warmup_minutes=1)
        assert result.tasks_per_machine.n == 6
        assert result.threads_per_machine.n == 6
        quantiles = result.quantiles()
        assert set(quantiles) == {"tasks", "threads"}
        assert all(q >= 0 for qs in quantiles.values() for q in qs)


class TestCaseStudies:
    def test_case3_deterministic(self):
        a = case3_bimodal_false_alarm(seed=3)
        b = case3_bimodal_false_alarm(seed=3)
        assert a.anomalies_without_gate == b.anomalies_without_gate
        assert a.best_correlation_without_gate == pytest.approx(
            b.best_correlation_without_gate)

    def test_case6_outcome_fields_consistent(self):
        result = case6_mapreduce_exit(seed=6)
        if result.exited_during_second:
            assert result.final_state == "exited"
            assert result.cap_episodes >= 2


class TestAblations:
    def test_window_policies_cover_three(self):
        results = anomaly_window_policies(minutes=40)
        assert [r.policy for r in results] == [
            "1-shot", "3-in-5-min (paper)", "5-in-5-min"]
        # Monotone: stricter policies never raise more anomalies.
        interference = [r.anomalies_interference for r in results]
        assert interference == sorted(interference, reverse=True)
        noise = [r.anomalies_noise_only for r in results]
        assert noise == sorted(noise, reverse=True)

    def test_age_weight_sweep_shape(self):
        results = age_weight_sweep(weights=(0.0, 0.9), days=6)
        assert [r.age_weight for r in results] == [0.0, 0.9]
        assert all(r.mean_abs_error >= 0 for r in results)
        assert all(r.worst_abs_error >= r.mean_abs_error for r in results)

    def test_group_antagonists_fields(self):
        result = group_antagonists(group_size=3, seed=1)
        assert result.num_antagonists == 3
        assert -1.0 <= result.max_individual_correlation <= 1.0
        assert -1.0 <= result.group_correlation <= 1.0
        assert result.victim_cpi_inflation > 1.0
        # Capping everyone can only help at least as much as capping one.
        assert (result.relative_cpi_group_capped
                <= result.relative_cpi_top1_capped + 0.05)
