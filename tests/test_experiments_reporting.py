"""Unit tests for repro.experiments.reporting."""

import pytest

from repro.experiments.reporting import Comparison, ExperimentReport


class TestExperimentReport:
    def test_add_and_render(self):
        report = ExperimentReport("fig99", "A test figure")
        report.add("quantity one", 0.97, 0.95)
        report.add("quantity two", "~0.4", 0.37, note="scaled")
        text = report.render()
        assert "== fig99: A test figure ==" in text
        assert "quantity one" in text
        assert "0.97" in text and "0.95" in text
        assert "scaled" in text

    def test_column_alignment(self):
        report = ExperimentReport("x", "t")
        report.add("short", 1, 2)
        report.add("a much longer quantity name", 3, 4)
        lines = report.render().splitlines()
        # Header and rows must align on the 'paper' column.
        header = lines[1]
        assert header.index("paper") > len("a much longer quantity name") - 1

    def test_add_series(self):
        report = ExperimentReport("x", "t")
        report.add_series("tp", [(0.7, 0.72), (0.8, 0.79)],
                          labels=["tp@0.35", "tp@0.40"])
        assert [r.quantity for r in report.rows] == ["tp@0.35", "tp@0.40"]

    def test_add_series_default_labels(self):
        report = ExperimentReport("x", "t")
        report.add_series("tp", [(1, 1), (2, 2)])
        assert report.rows[0].quantity == "tp[0]"

    def test_none_rendered_as_dash(self):
        report = ExperimentReport("x", "t")
        report.add("missing", None, None)
        assert "-" in report.render()

    def test_float_formatting(self):
        report = ExperimentReport("x", "t")
        report.add("f", 0.123456, 1234567.0)
        text = report.render()
        assert "0.123" in text
        assert "1.23e+06" in text

    def test_show_prints(self, capsys):
        report = ExperimentReport("x", "t")
        report.add("a", 1, 2)
        report.show()
        assert "== x: t ==" in capsys.readouterr().out

    def test_comparison_immutable(self):
        row = Comparison("q", 1, 2)
        with pytest.raises(Exception):
            row.paper = 3
