"""Unit tests for repro.experiments.scenarios."""

import pytest

from repro.core.config import CpiConfig
from repro.experiments.scenarios import (
    build_cluster,
    populated_fleet,
    victim_antagonist_machine,
)
from repro.records import SpecKey
from repro.workloads.services import make_service_job_spec


class TestBuildCluster:
    def test_platform_cycling(self):
        scenario = build_cluster(4, platforms=("westmere-2.6", "nehalem-2.3"))
        platforms = [m.platform.name
                     for m in scenario.simulation.machines.values()]
        assert platforms.count("westmere-2.6") == 2
        assert platforms.count("nehalem-2.3") == 2

    def test_pipeline_wired(self):
        scenario = build_cluster(2)
        assert set(scenario.pipeline.agents) == {"m0", "m1"}

    def test_validation(self):
        with pytest.raises(ValueError, match="num_machines"):
            build_cluster(0)

    def test_submit_tracks_jobs(self):
        scenario = build_cluster(2)
        job = scenario.submit(make_service_job_spec("svc", num_tasks=2))
        assert scenario.jobs["svc"] is job
        assert all(t.machine_name for t in job)

    def test_bootstrap_service_spec_covers_platforms(self):
        scenario = build_cluster(4, platforms=("westmere-2.6", "nehalem-2.3"))
        scenario.bootstrap_service_spec("svc", 1.0, 0.1)
        aggregator = scenario.pipeline.aggregator
        west = aggregator.spec_for("svc", "westmere-2.6")
        neh = aggregator.spec_for("svc", "nehalem-2.3")
        assert west is not None and neh is not None
        # Platform scaling applied: nehalem's cpi_scale is 1.18.
        assert neh.cpi_mean == pytest.approx(west.cpi_mean * 1.18, rel=0.01)


class TestPopulatedFleet:
    def test_every_machine_multi_tenant(self):
        scenario = populated_fleet(num_machines=8, seed=1)
        for machine in scenario.simulation.machines.values():
            assert machine.num_tasks >= 2

    def test_mix_contains_ls_and_batch(self):
        from repro.cluster.task import SchedulingClass
        scenario = populated_fleet(num_machines=8, seed=1)
        classes = {job.scheduling_class for job in scenario.jobs.values()}
        assert SchedulingClass.LATENCY_SENSITIVE in classes
        assert SchedulingClass.BATCH in classes

    def test_density_scales_population(self):
        dense = populated_fleet(num_machines=6, seed=1)
        sparse = populated_fleet(num_machines=6, seed=1, density=0.5)
        dense_tasks = sum(m.num_tasks
                          for m in dense.simulation.machines.values())
        sparse_tasks = sum(m.num_tasks
                           for m in sparse.simulation.machines.values())
        assert sparse_tasks < 0.75 * dense_tasks

    def test_antagonist_override_zero(self):
        scenario = populated_fleet(num_machines=6, seed=1,
                                   antagonist_tasks=(0, 0))
        assert "video-transcode" not in scenario.jobs
        assert "science-sim" not in scenario.jobs

    def test_density_validation(self):
        with pytest.raises(ValueError, match="density"):
            populated_fleet(num_machines=4, density=0.0)


class TestVictimAntagonistMachine:
    def test_setup(self):
        scenario, victim, antagonist = victim_antagonist_machine(seed=3)
        machine = next(iter(scenario.simulation.machines.values()))
        assert machine.has_task(victim.tasks[0].name)
        assert machine.has_task(antagonist.tasks[0].name)
        assert machine.num_tasks >= 3  # fillers too

    def test_spec_bootstrapped(self):
        scenario, victim, _ = victim_antagonist_machine(seed=3)
        agent = next(iter(scenario.pipeline.agents.values()))
        assert agent.spec_for("victim-service") is not None

    def test_detection_fires(self):
        scenario, victim, antagonist = victim_antagonist_machine(
            seed=3, antagonist_scale=1.4)
        scenario.simulation.run_minutes(20)
        agent = next(iter(scenario.pipeline.agents.values()))
        assert agent.anomalies_seen > 0
