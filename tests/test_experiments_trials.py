"""Unit tests for the Section 7 trial harness."""

import math

import pytest

from repro.cluster.task import PriorityBand
from repro.experiments.trials import TrialConfig, TrialResult, run_trial, run_trials

#: Short phases so each trial takes well under a second.
FAST = TrialConfig(calibration_seconds=300, interference_seconds=420,
                   cap_seconds=120)


@pytest.fixture(scope="module")
def some_trials():
    return run_trials(8, FAST)


class TestRunTrial:
    def test_deterministic(self):
        a = run_trial(5, FAST)
        b = run_trial(5, FAST)
        assert a.pre_cpi == b.pre_cpi
        assert a.top_correlation == b.top_correlation
        assert a.band == b.band

    def test_different_seeds_differ(self):
        a = run_trial(5, FAST)
        b = run_trial(6, FAST)
        assert (a.pre_cpi, a.num_tenants) != (b.pre_cpi, b.num_tenants)

    def test_result_sanity(self, some_trials):
        for trial in some_trials:
            assert trial.spec_mean > 0
            assert trial.spec_stddev >= 0.03 * trial.spec_mean
            assert trial.pre_cpi > 0
            assert trial.post_cpi > 0
            assert 0.0 <= trial.utilization <= 2.0
            assert -1.0 <= trial.top_correlation <= 1.0
            assert trial.num_tenants >= 3

    def test_antagonist_mix(self, some_trials):
        flags = {t.has_antagonist for t in some_trials}
        assert flags == {True, False} or len(some_trials) < 6

    def test_band_mix(self, some_trials):
        bands = {t.band for t in some_trials}
        assert PriorityBand.PRODUCTION in bands

    def test_antagonist_trials_name_it(self, some_trials):
        for trial in some_trials:
            if trial.has_antagonist and trial.picked_true_antagonist:
                assert trial.top_suspect_job.startswith("antagonist")


class TestDerivedMetrics:
    def make(self, **kwargs):
        defaults = dict(
            seed=0, band=PriorityBand.PRODUCTION, has_antagonist=True,
            antagonist_kind="video-processing", num_tenants=5,
            utilization=0.5, spec_mean=1.0, spec_stddev=0.1,
            anomaly_detected=True, pre_cpi=2.0, top_suspect="a/0",
            top_suspect_job="antagonist", top_correlation=0.5,
            picked_true_antagonist=True, post_cpi=1.0,
            pre_l3_mpi=0.004, post_l3_mpi=0.002)
        defaults.update(kwargs)
        return TrialResult(**defaults)

    def test_relative_cpi(self):
        assert self.make().relative_cpi == pytest.approx(0.5)

    def test_degradation(self):
        assert self.make().cpi_degradation == pytest.approx(2.0)

    def test_sigmas(self):
        assert self.make().cpi_increase_sigmas == pytest.approx(10.0)

    def test_relative_l3(self):
        assert self.make().relative_l3 == pytest.approx(0.5)

    def test_classify_tp(self):
        assert self.make(post_cpi=1.0).classify() == "tp"

    def test_classify_fp(self):
        assert self.make(post_cpi=2.2).classify() == "fp"

    def test_classify_noise(self):
        assert self.make(post_cpi=1.95).classify() == "noise"
        assert self.make(post_cpi=2.05).classify() == "noise"

    def test_nan_on_zero_pre(self):
        assert math.isnan(self.make(pre_cpi=0.0).relative_cpi)


class TestRunTrials:
    def test_count_and_seeds(self):
        trials = run_trials(3, FAST, seed_base=100)
        assert [t.seed for t in trials] == [100, 101, 102]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_trials(0, FAST)
