"""Golden tests for the Prometheus text-format exposition.

The rendered text is deterministic by construction (sorted families,
sorted label sets, fixed float formatting), so the main test pins an
exact golden document — any formatting drift is a visible diff, which is
what downstream scrapers care about.
"""

from __future__ import annotations

import math

from repro.obs.exposition import (render_prometheus, write_prometheus,
                                  write_timeseries_jsonl)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesDB

GOLDEN = """\
# TYPE analyses_dropped_total counter
analyses_dropped_total{reason="rate_limited"} 2
analyses_dropped_total{reason="stale_spec"} 7
# TYPE samples_ingested_total counter
samples_ingested_total 41
# TYPE caps_active gauge
caps_active{machine="m0"} 2
caps_active{machine="m1"} 0
# TYPE degraded_agents gauge
degraded_agents 1
# TYPE victim_cpi histogram
victim_cpi_bucket{le="1"} 1
victim_cpi_bucket{le="2"} 3
victim_cpi_bucket{le="+Inf"} 4
victim_cpi_sum 9.45
victim_cpi_count 4
"""


def _golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("samples_ingested").inc(41)
    registry.counter("analyses_dropped", reason="stale_spec").inc(7)
    registry.counter("analyses_dropped", reason="rate_limited").inc(2)
    registry.gauge("caps_active", machine="m0").set(2)
    registry.gauge("caps_active", machine="m1").set(0)
    registry.gauge("degraded_agents").set(1)
    hist = registry.histogram("victim_cpi", buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 1.95, 5.5):
        hist.observe(value)
    return registry


def test_render_prometheus_golden():
    assert render_prometheus(_golden_registry()) == GOLDEN


def test_render_prometheus_empty_registry():
    assert render_prometheus(MetricsRegistry()) == ""


def test_label_value_escaping():
    registry = MetricsRegistry()
    registry.counter("c", path='a"b\\c\nd').inc()
    text = render_prometheus(registry)
    assert 'c_total{path="a\\"b\\\\c\\nd"} 1' in text


def test_float_formatting():
    registry = MetricsRegistry()
    registry.gauge("g_int").set(3.0)
    registry.gauge("g_frac").set(0.125)
    registry.gauge("g_nan").set(math.nan)
    registry.gauge("g_inf").set(math.inf)
    text = render_prometheus(registry)
    assert "g_int 3\n" in text          # integral floats render as ints
    assert "g_frac 0.125\n" in text     # repr round-trips exactly
    assert "g_nan NaN\n" in text
    assert "g_inf +Inf\n" in text


def test_write_prometheus(tmp_path):
    path = tmp_path / "metrics.prom"
    count = write_prometheus(_golden_registry(), str(path))
    assert path.read_text() == GOLDEN
    assert count == GOLDEN.count("\n")


def test_write_timeseries_jsonl(tmp_path):
    path = tmp_path / "series.jsonl"
    assert write_timeseries_jsonl(None, str(path)) == 0   # telemetry off
    assert path.read_text() == ""
    registry = MetricsRegistry()
    registry.counter("c").inc()
    tsdb = TimeSeriesDB()
    tsdb.scrape_registry(10, registry)
    assert write_timeseries_jsonl(tsdb, str(path)) == 1
    assert path.read_text() == tsdb.dump_lines()[0] + "\n"
