"""Failure-injection tests: churn, staleness and edge conditions.

The agent and pipeline must stay sane when tasks die mid-window, when specs
change underneath running detection, when victims depart mid-amelioration,
and when whole jobs disappear — the normal background noise of a cluster.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.cluster.task import SchedulingClass, TaskState
from repro.core.agent import MachineAgent
from repro.core.config import CpiConfig
from repro.core.pipeline import CpiPipeline
from repro.core.policy import PolicyAction
from repro.perf.sampler import CpiSampler, SamplerConfig
from repro.records import SpecKey
from repro.testing import (
    NOISY_NEIGHBOR_PROFILE,
    SENSITIVE_PROFILE,
    make_quiet_machine,
    make_scripted_job,
)
from tests.conftest import make_spec

FAST = CpiConfig(sampling_duration=5, sampling_period=15,
                 anomaly_window=120, correlation_window=300,
                 hardcap_duration=60)


def build_victim_rig(config=FAST):
    machine = make_quiet_machine()
    sampler = CpiSampler(machine, SamplerConfig(config.sampling_duration,
                                                config.sampling_period))
    agent = MachineAgent(machine, config)
    victim = make_scripted_job("victim", [1.0], cpu_limit=2.0, base_cpi=1.0,
                               profile=SENSITIVE_PROFILE)
    antagonist = make_scripted_job("ant", [6.0], cpu_limit=8.0,
                                   scheduling_class=SchedulingClass.BATCH,
                                   profile=NOISY_NEIGHBOR_PROFILE)
    machine.place(victim.tasks[0])
    machine.place(antagonist.tasks[0])
    agent.update_specs({SpecKey("victim", machine.platform.name): make_spec(
        jobname="victim", cpi_mean=1.0, cpi_stddev=0.1)})
    return machine, sampler, agent, victim, antagonist


def drive(machine, sampler, agent, start, seconds):
    for t in range(start, start + seconds):
        machine.tick(t)
        agent.tick(t)
        samples = sampler.tick(t)
        if samples:
            agent.ingest_samples(t, samples)
    return start + seconds


class TestVictimDeparture:
    def test_victim_dies_before_analysis(self):
        machine, sampler, agent, victim, _ = build_victim_rig()
        now = drive(machine, sampler, agent, 0, 40)
        machine.remove("victim/0", TaskState.KILLED)
        agent.forget_task("victim/0")
        # The stream continues without the victim; nothing blows up and no
        # stale incident appears for it.
        drive(machine, sampler, agent, now, 120)
        assert all(i.victim_taskname != "victim/0" or i.time_seconds <= now
                   for i in agent.incidents)

    def test_victim_dies_during_followup(self):
        machine, sampler, agent, victim, _ = build_victim_rig()
        now = drive(machine, sampler, agent, 0, 180)
        throttles = [i for i in agent.incidents
                     if i.decision.action is PolicyAction.THROTTLE]
        assert throttles, "need an in-flight amelioration for this test"
        machine.remove("victim/0", TaskState.KILLED)
        agent.forget_task("victim/0")
        drive(machine, sampler, agent, now, 120)
        # The follow-up closed gracefully: the ghost counts as recovered.
        assert throttles[0].recovered is True


class TestAntagonistDeparture:
    def test_capped_antagonist_exits(self):
        machine, sampler, agent, _victim, antagonist = build_victim_rig()
        now = drive(machine, sampler, agent, 0, 180)
        if machine.has_task("ant/0"):
            machine.remove("ant/0", TaskState.EXITED)
            agent.forget_task("ant/0")
        drive(machine, sampler, agent, now, 180)
        # With the antagonist gone the victim must stop being anomalous
        # eventually: the last incidents close recovered.
        closed = [i for i in agent.incidents if i.recovered is not None]
        assert closed
        assert closed[-1].recovered is True


class TestSpecChurn:
    def test_spec_update_mid_stream(self):
        machine, sampler, agent, *_ = build_victim_rig()
        now = drive(machine, sampler, agent, 0, 60)
        # The aggregator publishes a much looser spec: detection must respect
        # it immediately (no stale-threshold anomalies).
        agent.update_specs({SpecKey("victim", machine.platform.name):
                            make_spec(jobname="victim", cpi_mean=3.0,
                                      cpi_stddev=1.0)})
        before = agent.anomalies_seen
        drive(machine, sampler, agent, now, 120)
        assert agent.anomalies_seen == before

    def test_spec_withdrawal_stops_detection(self):
        machine, sampler, agent, *_ = build_victim_rig()
        now = drive(machine, sampler, agent, 0, 60)
        agent.update_specs({})
        before = agent.anomalies_seen
        drive(machine, sampler, agent, now, 120)
        assert agent.anomalies_seen == before
        assert agent.detector.samples_skipped_no_spec > 0


class TestSchedulerChurn:
    def test_mass_preemption_keeps_invariants(self):
        from repro.cluster.scheduler import ClusterScheduler

        machines = [make_quiet_machine(f"m{i}") for i in range(2)]
        scheduler = ClusterScheduler(machines, batch_overcommit=1.2)
        batch_jobs = [
            make_scripted_job(f"b{i}", [1.0], num_tasks=2, cpu_limit=10.0,
                              scheduling_class=SchedulingClass.BATCH)
            for i in range(3)
        ]
        for job in batch_jobs:
            scheduler.submit(job)
        # A wave of LS arrivals forces preemptions.
        for i in range(3):
            scheduler.submit(make_scripted_job(f"ls{i}", [1.0], num_tasks=1,
                                               cpu_limit=12.0))
        for machine in machines:
            ls = machine.reserved_cpu(SchedulingClass.LATENCY_SENSITIVE)
            assert ls <= machine.cpu_capacity
            assert machine.reserved_cpu() <= machine.cpu_capacity * 1.2 + 1e-9
        # Preempted/unplaced tasks are cleanly off-machine and re-placeable.
        for job in batch_jobs:
            for task in job:
                assert task.state in (TaskState.RUNNING, TaskState.PREEMPTED,
                                      TaskState.PENDING)
                if task.state is not TaskState.RUNNING:
                    assert task.machine_name is None
        scheduler.reschedule_pending()


class TestPipelineChurn:
    def test_workload_exits_flow_through_pipeline(self):
        config = FAST
        machines = [make_quiet_machine("m0")]
        sim = ClusterSimulation(machines, SimConfig(
            sampler=SamplerConfig(config.sampling_duration,
                                  config.sampling_period)))
        pipeline = CpiPipeline(sim, config)
        dying = make_scripted_job("dying", [1.0], num_tasks=3, cpu_limit=2.0,
                                  complete_at=50)
        sim.scheduler.submit(dying)
        sim.run(120)
        assert all(t.state is TaskState.COMPLETED for t in dying)
        agent = pipeline.agents["m0"]
        for task in dying:
            assert agent.detector.violations_for(task.name) == 0
