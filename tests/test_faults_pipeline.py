"""End-to-end tests: fault plane wiring, degraded mode, CLI, chaos sweep."""

import math

import pytest

from repro.cluster.job import Job
from repro.cluster.machine import Machine
from repro.cluster.platform import get_platform
from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.core.agent import MachineAgent
from repro.core.config import CpiConfig
from repro.core.pipeline import CpiPipeline
from repro.faults.plane import FaultPlane
from repro.obs import Observability
from repro.records import CpiSpec, SpecKey
from repro.testing import make_quiet_machine, make_scripted_job
from repro.workloads import AntagonistKind, make_antagonist_job_spec
from repro.workloads.services import make_service_job_spec
from tests.conftest import make_sample, make_spec


def build_demo_pipeline(fault_profile=None, fault_seed=0, minutes=0):
    platform = get_platform("westmere-2.6")
    machine = Machine("demo", platform, cpi_noise_sigma=0.03)
    sim = ClusterSimulation([machine], SimConfig(seed=42))
    pipeline = CpiPipeline(sim, CpiConfig(), obs=Observability(),
                           fault_profile=fault_profile, fault_seed=fault_seed)
    sim.scheduler.submit(Job(make_service_job_spec("frontend", num_tasks=1,
                                                   seed=42)))
    sim.scheduler.submit(Job(make_antagonist_job_spec(
        "video", AntagonistKind.VIDEO_PROCESSING, num_tasks=1,
        seed=43, demand_scale=1.3)))
    pipeline.bootstrap_specs([CpiSpec("frontend", platform.name, 10_000,
                                      1.0, 1.05, 0.08)])
    if minutes:
        sim.run_minutes(minutes)
    return pipeline


class TestZeroProfileBypass:
    def test_default_and_none_skip_the_fault_plane(self):
        assert build_demo_pipeline().faults is None
        assert build_demo_pipeline(fault_profile="none").faults is None

    def test_nonzero_profile_builds_the_plane(self):
        pipeline = build_demo_pipeline(fault_profile="moderate")
        assert isinstance(pipeline.faults, FaultPlane)

    def test_none_profile_run_matches_no_argument_run(self):
        baseline = build_demo_pipeline(minutes=30)
        explicit = build_demo_pipeline(fault_profile="none", minutes=30)
        key = lambda p: [(i.time_seconds, i.victim_taskname,
                          i.decision.action.value,
                          round(i.victim_cpi, 9))
                         for i in p.all_incidents()]
        assert key(baseline) == key(explicit)

    def test_fault_seed_does_not_perturb_workload(self):
        # Different fault seeds, zero profile: identical runs.
        run_a = build_demo_pipeline(fault_profile="none", fault_seed=1,
                                    minutes=20)
        run_b = build_demo_pipeline(fault_profile="none", fault_seed=2,
                                    minutes=20)
        assert ([i.time_seconds for i in run_a.all_incidents()]
                == [i.time_seconds for i in run_b.all_incidents()])


class TestFaultedEndToEnd:
    def test_moderate_run_detects_and_loses_nothing_silently(self):
        pipeline = build_demo_pipeline(fault_profile="moderate",
                                       fault_seed=7, minutes=60)
        assert pipeline.all_incidents()  # detection survives the faults
        plane = pipeline.faults
        assert plane.total_faults_injected > 0
        observed = int(pipeline.obs.metrics.total("transport_faults")
                       + pipeline.obs.metrics.total("agent_crashes"))
        assert observed == plane.total_faults_injected
        # Nothing corrupt leaked into the published specs.
        for spec in pipeline.aggregator.specs().values():
            assert math.isfinite(spec.cpi_mean)
            assert math.isfinite(spec.cpi_stddev)
            assert spec.cpi_mean <= pipeline.config.quarantine_cpi_bound

    def test_uploads_survive_drops_via_retries(self):
        pipeline = build_demo_pipeline(fault_profile="moderate",
                                       fault_seed=7, minutes=60)
        metrics = pipeline.obs.metrics
        sent = metrics.total("upload_batches_sent")
        acked = metrics.total("upload_batches_acked")
        assert sent > 0
        # With drops at 5% and 5 attempts, nearly everything lands.
        assert acked >= 0.9 * sent
        assert pipeline.aggregator.total_samples_ingested > 0


class TestDegradedMode:
    def make_agent(self, spec_refresh_period=60, spec_ttl_periods=3.0):
        obs = Observability()
        machine = make_quiet_machine()
        job = make_scripted_job("victim", [1.0])
        machine.place(job.tasks[0])
        config = CpiConfig(spec_refresh_period=spec_refresh_period,
                           spec_ttl_periods=spec_ttl_periods)
        agent = MachineAgent(machine, config, obs=obs)
        return agent, obs

    def spec_map(self, agent):
        return {SpecKey("victim", agent.machine.platform.name):
                make_spec(jobname="victim")}

    def test_bootstrap_specs_never_go_stale(self):
        agent, obs = self.make_agent()
        agent.update_specs(self.spec_map(agent))  # no issue time: bootstrap
        assert agent.spec_staleness(10**9) is None
        assert not agent.specs_too_stale(10**9)

    def test_stale_specs_suppress_detection_with_counted_reason(self):
        agent, obs = self.make_agent()
        agent.receive_spec_push(0, self.spec_map(agent), issued_at=0)
        # TTL is 3 x 60s; at t=300 the specs are 300s old -> degraded.
        sample = make_sample(jobname="victim", taskname="victim/0",
                             t=300, cpi=5.0)
        agent.ingest_samples(300, [sample])
        assert agent._degraded
        dropped = [c for c in obs.metrics.counters("analyses_dropped")
                   if ("reason", "stale_spec") in c.labels]
        assert dropped and dropped[0].value == 1
        # The sample still fed the window (follow-ups keep working).
        assert len(agent._windows["victim/0"].samples) == 1
        assert agent.anomalies_seen == 0

    def test_fresh_push_exits_degraded_mode(self):
        agent, obs = self.make_agent()
        agent.receive_spec_push(0, self.spec_map(agent), issued_at=0)
        agent.ingest_samples(300, [make_sample(jobname="victim",
                                               taskname="victim/0", t=300)])
        assert agent._degraded
        agent.receive_spec_push(301, self.spec_map(agent), issued_at=301)
        assert not agent._degraded
        assert obs.metrics.value("degraded_agents") == 0

    def test_out_of_order_push_is_ignored(self):
        agent, obs = self.make_agent()
        fresh = self.spec_map(agent)
        agent.receive_spec_push(100, fresh, issued_at=100)
        stale_map = {SpecKey("victim", agent.machine.platform.name):
                     make_spec(jobname="victim", cpi_mean=9.9)}
        agent.receive_spec_push(130, stale_map, issued_at=50)  # reordered
        assert agent.spec_for("victim").cpi_mean != 9.9
        assert obs.metrics.total("spec_pushes_ignored") == 1

    def test_implausible_entry_falls_back_to_last_known_good(self):
        agent, obs = self.make_agent()
        good = self.spec_map(agent)
        agent.receive_spec_push(0, good, issued_at=0)
        corrupted = {SpecKey("victim", agent.machine.platform.name):
                     make_spec(jobname="victim", cpi_mean=float("nan"))}
        agent.receive_spec_push(60, corrupted, issued_at=60)
        kept = agent.spec_for("victim")
        assert kept is not None and math.isfinite(kept.cpi_mean)
        assert obs.metrics.total("spec_entries_rejected") == 1

    def test_implausible_entry_without_predecessor_is_dropped(self):
        agent, obs = self.make_agent()
        corrupted = {SpecKey("victim", agent.machine.platform.name):
                     make_spec(jobname="victim", cpi_mean=float("nan"))}
        agent.receive_spec_push(0, corrupted, issued_at=0)
        assert agent.spec_for("victim") is None


class TestCli:
    def test_demo_accepts_fault_flags(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["demo", "--fault-profile", "moderate", "--fault-seed", "7"])
        assert args.fault_profile == "moderate"
        assert args.fault_seed == 7

    def test_demo_defaults_to_no_faults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["demo"])
        assert args.fault_profile == "none"
        assert args.fault_seed == 0

    def test_unknown_profile_rejected_at_parse_time(self):
        from repro.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--fault-profile", "nuclear"])


class TestChaosSweep:
    def test_small_sweep_reports_visible_faults_and_precision(self):
        from repro.experiments.chaos import chaos_sweep

        result = chaos_sweep(profiles=("none", "moderate"), num_machines=1,
                             hours=0.5, seed=0, fault_seed=3)
        clean = result.cell("none")
        faulted = result.cell("moderate")
        assert clean.faults_injected == 0
        assert faulted.faults_injected > 0
        assert faulted.all_faults_visible
        assert 0.0 <= faulted.precision <= 1.0
        assert result.precision_retention("moderate") >= 0.0

    def test_registry_knows_chaos(self):
        from repro.experiments.registry import EXPERIMENTS
        assert "chaos" in EXPERIMENTS
