"""Tests for plausibility quarantine at every trust boundary.

Covers the shared validators, the transport corrupters (every kind of
damage they can inject must be caught by the validators — the loop the
chaos experiment relies on), and the three enforcement points: sampler,
agent, aggregator.
"""

import math

import numpy as np
import pytest

from repro.core.aggregator import CpiAggregator
from repro.core.agent import MachineAgent
from repro.core.config import CpiConfig
from repro.faults.quarantine import (
    corrupt_sample_batch,
    corrupt_spec_push,
    sample_quarantine_reason,
    spec_is_plausible,
)
from repro.faults.retry import SampleBatch
from repro.faults.plane import SpecPush
from repro.obs import Observability
from repro.perf.counters import CounterSet
from repro.perf.events import CounterEvent
from repro.perf.sampler import CpiSampler, SamplerConfig
from repro.records import SpecKey
from repro.testing import make_quiet_machine, make_scripted_job
from tests.conftest import make_sample, make_spec

BOUND = 1000.0


class TestSampleValidator:
    def test_plausible_sample_passes(self):
        assert sample_quarantine_reason(make_sample(cpi=1.2), BOUND) is None

    @pytest.mark.parametrize("kwargs,reason", [
        ({"cpi": float("nan")}, "non_finite_cpi"),
        ({"cpi": float("inf")}, "non_finite_cpi"),
        ({"cpu_usage": float("nan")}, "non_finite_usage"),
        ({"cpi": 0.0}, "zero_cpi"),
        ({"cpi": BOUND * 2}, "absurd_cpi"),
    ])
    def test_each_quarantine_reason(self, kwargs, reason):
        assert sample_quarantine_reason(make_sample(**kwargs), BOUND) == reason


class TestSpecValidator:
    def test_plausible_spec_passes(self):
        assert spec_is_plausible(make_spec(), BOUND)

    @pytest.mark.parametrize("kwargs", [
        {"cpi_mean": float("nan")},
        {"cpi_mean": BOUND * 1e3},
        {"cpi_stddev": float("nan")},
        {"cpu_usage_mean": float("inf")},
    ])
    def test_implausible_specs_rejected(self, kwargs):
        assert not spec_is_plausible(make_spec(**kwargs), BOUND)


class TestCorrupters:
    def test_every_sample_corruption_is_caught_by_validator(self):
        batch = SampleBatch(batch_id="m0/0", machine="m0", sent_at=0,
                            samples=tuple(make_sample(t=60 * i, cpi=1.0)
                                          for i in range(1, 4)))
        for seed in range(50):
            damaged = corrupt_sample_batch(batch, np.random.default_rng(seed))
            reasons = [sample_quarantine_reason(s, BOUND)
                       for s in damaged.samples]
            assert sum(r is not None for r in reasons) == 1
            assert damaged.batch_id == batch.batch_id

    def test_every_spec_corruption_is_caught_by_validator(self):
        push = SpecPush(issued_at=0, specs={
            SpecKey("job-a", "p"): make_spec(jobname="job-a"),
            SpecKey("job-b", "p"): make_spec(jobname="job-b"),
        })
        for seed in range(50):
            damaged = corrupt_spec_push(push, np.random.default_rng(seed))
            bad = [k for k, s in damaged.specs.items()
                   if not spec_is_plausible(s, BOUND)]
            assert len(bad) == 1

    def test_empty_payloads_pass_through(self):
        rng = np.random.default_rng(0)
        empty_batch = SampleBatch("m0/0", "m0", 0, ())
        assert corrupt_sample_batch(empty_batch, rng) is empty_batch
        empty_push = SpecPush(issued_at=0, specs={})
        assert corrupt_spec_push(empty_push, rng) is empty_push


class TestAgentBoundary:
    def make_agent(self):
        obs = Observability()
        machine = make_quiet_machine()
        job = make_scripted_job("victim", [1.0])
        machine.place(job.tasks[0])
        agent = MachineAgent(machine, CpiConfig(), obs=obs)
        agent.update_specs({SpecKey("victim", machine.platform.name):
                            make_spec(jobname="victim")})
        return agent, obs

    def test_implausible_samples_never_reach_windows(self):
        agent, obs = self.make_agent()
        bad = make_sample(jobname="victim", taskname="victim/0",
                          cpi=float("nan"))
        agent.ingest_samples(60, [bad])
        assert agent._windows == {}
        assert obs.metrics.total("samples_quarantined") == 1

    def test_plausible_samples_still_flow(self):
        agent, obs = self.make_agent()
        good = make_sample(jobname="victim", taskname="victim/0", cpi=1.0)
        agent.ingest_samples(60, [good])
        assert "victim/0" in agent._windows
        assert obs.metrics.total("samples_quarantined") == 0


class TestAggregatorBoundary:
    def test_rejects_non_finite_without_touching_stats(self):
        obs = Observability()
        aggregator = CpiAggregator(CpiConfig(), obs=obs)
        aggregator.ingest(make_sample(cpi=float("nan")))
        aggregator.ingest(make_sample(cpi=0.0))
        aggregator.ingest(make_sample(cpi=1.1, t=120))
        assert aggregator.total_samples_rejected == 2
        assert aggregator.total_samples_ingested == 1
        assert obs.metrics.total("aggregator_samples_rejected") == 2

    def test_published_specs_stay_finite_under_garbage(self):
        config = CpiConfig(min_tasks_for_spec=1, min_samples_per_task=1)
        aggregator = CpiAggregator(config, obs=Observability())
        for i in range(20):
            aggregator.ingest(make_sample(t=60 * i, cpi=1.0 + 0.01 * i))
            aggregator.ingest(make_sample(t=60 * i, cpi=float("nan")))
        specs = aggregator.recompute(now=20 * 60)
        assert specs
        for spec in specs.values():
            assert math.isfinite(spec.cpi_mean)
            assert math.isfinite(spec.cpi_stddev)


class TestSamplerBoundary:
    def test_counterset_refuses_non_finite_increments(self):
        counters = CounterSet()
        with pytest.raises(ValueError, match="finite"):
            counters.add(CounterEvent.INSTRUCTIONS_RETIRED, float("nan"))
        with pytest.raises(ValueError, match="finite"):
            counters.add(CounterEvent.CPU_CLK_UNHALTED_REF, float("inf"))

    def test_zero_instruction_window_discarded_with_count(self):
        obs = Observability()
        machine = make_quiet_machine()
        job = make_scripted_job("idle", [1.0])
        machine.place(job.tasks[0])
        sampler = CpiSampler(machine, SamplerConfig(10, 60), obs=obs)
        # Open and close a window without ever executing the machine:
        # the task retires zero instructions, so CPI is undefined.
        sampler.tick(0)
        samples = sampler.tick(10)
        assert samples == []
        assert obs.metrics.total("sampler_windows_discarded") == 1
        labels = dict(obs.metrics.counters("sampler_windows_discarded")[0]
                      .labels)
        assert labels["reason"] == "zero_instructions"
