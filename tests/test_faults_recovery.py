"""Tests for agent checkpointing, crash, and deterministic recovery."""

import json

import pytest

from repro.cluster.task import SchedulingClass
from repro.core.agent import MachineAgent
from repro.core.config import CpiConfig
from repro.core.policy import PolicyAction
from repro.faults.checkpoint import (CHECKPOINT_VERSION, AgentCheckpoint,
                                     CheckpointVersionError, FollowUpState)
from repro.obs import Observability
from repro.perf.sampler import CpiSampler, SamplerConfig
from repro.records import SpecKey
from repro.testing import (
    NOISY_NEIGHBOR_PROFILE,
    SENSITIVE_PROFILE,
    make_quiet_machine,
    make_scripted_job,
)
from tests.conftest import make_sample, make_spec

FAST = CpiConfig(sampling_duration=5, sampling_period=15,
                 anomaly_window=120, correlation_window=300,
                 hardcap_duration=120)


def build_rig(config=FAST):
    """Machine + sampler + agent with a sensitive victim and an antagonist."""
    obs = Observability()
    machine = make_quiet_machine()
    sampler = CpiSampler(machine, SamplerConfig(config.sampling_duration,
                                                config.sampling_period))
    agent = MachineAgent(machine, config, obs=obs)
    victim = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                               base_cpi=1.0, profile=SENSITIVE_PROFILE)
    machine.place(victim.tasks[0])
    antagonist = make_scripted_job("ant", [6.0], cpu_limit=8.0,
                                   scheduling_class=SchedulingClass.BATCH,
                                   profile=NOISY_NEIGHBOR_PROFILE)
    machine.place(antagonist.tasks[0])
    agent.update_specs({SpecKey("victim", machine.platform.name):
                        make_spec(jobname="victim", cpi_mean=1.0,
                                  cpi_stddev=0.1)})
    return machine, sampler, agent, obs


def run_rig(machine, sampler, agent, start, stop):
    for t in range(start, stop):
        machine.tick(t)
        agent.tick(t)
        samples = sampler.tick(t)
        if samples:
            agent.ingest_samples(t, samples)


def run_until_followup(machine, sampler, agent, limit=600):
    for t in range(limit):
        machine.tick(t)
        agent.tick(t)
        samples = sampler.tick(t)
        if samples:
            agent.ingest_samples(t, samples)
        if agent._followups:
            return t
    raise AssertionError("no follow-up in flight within the limit")


class TestCheckpointSerialisation:
    def test_round_trips_through_json(self):
        checkpoint = AgentCheckpoint(
            machine="m0", taken_at=120, last_analysis=90, anomalies_seen=3,
            windows={"victim/0": [
                {"jobname": "victim", "platforminfo": "p", "timestamp": 1,
                 "cpu_usage": 1.0, "cpi": 1.5, "taskname": "victim/0"}]},
            detector_flags={"victim/0": [60, 120]},
            followups=[FollowUpState(
                due_at=300, victim_taskname="victim/0",
                antagonist_taskname="ant/0", incident_id=12,
                incident_time=120, victim_jobname="victim",
                victim_cpi=1.9, cpi_threshold=1.2, action="throttle")],
        )
        wire = json.dumps(checkpoint.to_dict())
        restored = AgentCheckpoint.from_dict(json.loads(wire))
        assert restored == checkpoint


class TestCrashSemantics:
    def test_crash_wipes_volatile_state_keeps_specs_and_incidents(self):
        machine, sampler, agent, obs = build_rig()
        t = run_until_followup(machine, sampler, agent)
        incidents_before = list(agent.incidents)
        assert agent._windows and agent._followups
        agent.crash(t)
        assert agent._windows == {}
        assert agent._followups == []
        assert agent._last_analysis is None
        assert agent.crash_count == 1
        # The spec cache and the incident record survive (persisted state).
        assert agent.spec_for("victim") is not None
        assert agent.incidents == incidents_before
        assert obs.metrics.total("agent_crashes") == 1

    def test_restart_without_checkpoint_relearns_from_scratch(self):
        machine, sampler, agent, obs = build_rig()
        t = run_until_followup(machine, sampler, agent)
        agent.crash_and_restart(t)  # no checkpoint was ever taken
        assert agent._followups == []
        # Detection still works after the restart.
        run_rig(machine, sampler, agent, t + 1, t + 400)
        assert agent.anomalies_seen > 0


class TestCheckpointRecovery:
    def test_restore_rearms_followup_and_it_completes(self):
        machine, sampler, agent, obs = build_rig()
        t = run_until_followup(machine, sampler, agent)
        incident = agent._followups[0].incident
        agent.take_checkpoint(t)
        agent.crash_and_restart(t)
        assert len(agent._followups) == 1
        assert agent._followups[0].incident is incident  # reused by id
        assert obs.metrics.total("followups_recovered") == 1
        run_rig(machine, sampler, agent, t + 1, t + FAST.hardcap_duration + 60)
        assert incident.recovered is not None  # the follow-up closed

    def test_restore_into_fresh_process_rebuilds_incident(self):
        machine, sampler, agent, obs = build_rig()
        t = run_until_followup(machine, sampler, agent)
        checkpoint = AgentCheckpoint.from_dict(
            json.loads(json.dumps(agent.take_checkpoint(t).to_dict())))
        fresh = MachineAgent(machine, FAST, obs=Observability())
        fresh.restore(checkpoint, t)
        assert len(fresh._followups) == 1
        rebuilt = fresh._followups[0].incident
        assert rebuilt.incident_id == checkpoint.followups[0].incident_id
        assert rebuilt.decision.action is PolicyAction.THROTTLE
        assert rebuilt.decision.reason == "restored-from-checkpoint"
        assert rebuilt in fresh.incidents

    def test_restore_finalises_followup_whose_victim_departed(self):
        machine, sampler, agent, obs = build_rig()
        t = run_until_followup(machine, sampler, agent)
        checkpoint = agent.take_checkpoint(t)
        sunk = []
        agent.incident_sink = sunk.append
        agent.crash(t)
        from repro.cluster.task import TaskState
        machine.remove("victim/0", TaskState.KILLED)
        agent.restore(checkpoint, t + 30)
        assert agent._followups == []
        assert obs.metrics.total("followups_purged") == 1
        assert len(sunk) == 1 and sunk[0].recovered is True

    def test_restored_windows_match_checkpoint(self):
        machine, sampler, agent, obs = build_rig()
        run_rig(machine, sampler, agent, 0, 120)
        checkpoint = agent.take_checkpoint(120)
        agent.crash(120)
        agent.restore(checkpoint, 125)
        for taskname, samples in checkpoint.windows.items():
            window = agent._windows[taskname]
            assert [s.cpi for s in window.samples] == [s["cpi"]
                                                      for s in samples]


class TestCrashRestartDeterminism:
    def run_faulted_demo(self, fault_seed, crash_rate=1.0 / 300.0):
        from repro.cluster.simulation import ClusterSimulation, SimConfig
        from repro.cluster.machine import Machine
        from repro.cluster.job import Job
        from repro.cluster.platform import get_platform
        from repro.core.pipeline import CpiPipeline
        from repro.faults.profile import FAULT_PROFILES
        from repro.records import CpiSpec
        from repro.workloads import AntagonistKind, make_antagonist_job_spec
        from repro.workloads.services import make_service_job_spec

        platform = get_platform("westmere-2.6")
        machine = Machine("demo", platform, cpi_noise_sigma=0.03)
        sim = ClusterSimulation([machine], SimConfig(seed=42))
        profile = FAULT_PROFILES["moderate"].with_overrides(
            agent_crash_rate=crash_rate)
        pipeline = CpiPipeline(sim, CpiConfig(), obs=Observability(),
                               fault_profile=profile, fault_seed=fault_seed)
        sim.scheduler.submit(Job(make_service_job_spec(
            "frontend", num_tasks=1, seed=42)))
        sim.scheduler.submit(Job(make_antagonist_job_spec(
            "video", AntagonistKind.VIDEO_PROCESSING, num_tasks=1,
            seed=43, demand_scale=1.3)))
        pipeline.bootstrap_specs([CpiSpec("frontend", platform.name,
                                          10_000, 1.0, 1.05, 0.08)])
        sim.run_minutes(45)
        agent = pipeline.agents["demo"]
        incidents = [(i.machine, i.time_seconds, i.victim_taskname,
                      i.decision.action.value) for i in pipeline.all_incidents()]
        return incidents, agent.crash_count, pipeline.faults.fault_tallies()

    def test_same_fault_seed_replays_same_incidents_and_crashes(self):
        run_a = self.run_faulted_demo(fault_seed=11)
        run_b = self.run_faulted_demo(fault_seed=11)
        assert run_a == run_b
        assert run_a[1] > 0  # the schedule did include crashes

    def test_different_fault_seed_changes_fault_schedule(self):
        _, _, tallies_a = self.run_faulted_demo(fault_seed=11)
        _, _, tallies_b = self.run_faulted_demo(fault_seed=12)
        assert tallies_a != tallies_b


class TestCheckpointVersioning:
    """A stale checkpoint schema must be ignored, never crash the agent."""

    def test_version_field_serialised(self):
        machine, sampler, agent, obs = build_rig()
        checkpoint = agent.take_checkpoint(0)
        assert checkpoint.version == CHECKPOINT_VERSION
        assert checkpoint.to_dict()["version"] == CHECKPOINT_VERSION

    def test_from_dict_rejects_mismatched_version(self):
        machine, sampler, agent, obs = build_rig()
        data = agent.take_checkpoint(0).to_dict()
        data["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointVersionError,
                           match="checkpoint schema version"):
            AgentCheckpoint.from_dict(data)

    def test_from_dict_rejects_missing_version(self):
        machine, sampler, agent, obs = build_rig()
        data = agent.take_checkpoint(0).to_dict()
        del data["version"]
        with pytest.raises(CheckpointVersionError):
            AgentCheckpoint.from_dict(data)

    def test_restore_from_dict_counts_mismatch_and_keeps_working(self):
        machine, sampler, agent, obs = build_rig()
        t = run_until_followup(machine, sampler, agent)
        data = agent.take_checkpoint(t).to_dict()
        data["version"] = 99

        agent.crash(t + 1)
        assert agent.restore_from_dict(data, t + 1) is False
        assert obs.metrics.total("checkpoint_version_mismatch") == 1
        assert agent._followups == []          # relearns instead of loading
        # The agent stays functional after rejecting the stale file.
        run_rig(machine, sampler, agent, t + 2, t + 60)

    def test_restore_from_dict_round_trips_current_version(self):
        machine, sampler, agent, obs = build_rig()
        t = run_until_followup(machine, sampler, agent)
        data = json.loads(json.dumps(agent.take_checkpoint(t).to_dict()))

        agent.crash(t + 1)
        assert agent.restore_from_dict(data, t + 1) is True
        assert obs.metrics.total("checkpoint_version_mismatch") == 0
        assert len(agent._followups) == 1
