"""Tests for the retrying upload client and deduplicating endpoint."""

import numpy as np

from repro.faults.profile import RetryPolicy
from repro.faults.retry import Ack, AggregatorEndpoint, SampleBatch, UploadClient
from repro.obs import Observability
from tests.conftest import make_sample


def make_client(policy=None, obs=None):
    """An UploadClient writing every (re)send onto a visible wire."""
    wire = []
    client = UploadClient(
        "m0", send=lambda t, batch: wire.append((t, batch)),
        policy=policy or RetryPolicy(timeout=10, max_attempts=3, jitter=0.0),
        rng=np.random.default_rng(0), obs=obs)
    return client, wire


def make_endpoint(obs=None):
    """An AggregatorEndpoint recording ingested samples and outgoing acks."""
    ingested, acks = [], []
    endpoint = AggregatorEndpoint(
        ingest=ingested.append,
        ack=lambda t, ack: acks.append((t, ack)),
        obs=obs)
    return endpoint, ingested, acks


class TestHappyPath:
    def test_upload_ack_roundtrip(self):
        client, wire = make_client()
        endpoint, ingested, acks = make_endpoint()
        batch_id = client.upload(0, [make_sample(), make_sample(t=61)])
        assert batch_id == "m0/0"
        t_sent, batch = wire[0]
        endpoint.receive(1, batch)
        assert len(ingested) == 2
        client.on_ack(2, acks[0][1])
        assert client.pending_batches == 0
        assert client.batches_acked == 1

    def test_batch_ids_are_unique_per_machine(self):
        client, wire = make_client()
        ids = [client.upload(t, [make_sample()]) for t in range(5)]
        assert ids == [f"m0/{i}" for i in range(5)]


class TestRetryAndTimeout:
    def test_timeout_schedules_backed_off_resend(self):
        policy = RetryPolicy(timeout=10, max_attempts=3, backoff_base=4.0,
                             backoff_factor=2.0, jitter=0.0)
        client, wire = make_client(policy)
        client.upload(0, [make_sample()])
        for t in range(1, 10):
            client.pump(t)
        assert len(wire) == 1  # still within the timeout
        client.pump(10)        # timed out; first retry backs off 4s
        assert len(wire) == 1
        for t in range(11, 14):
            client.pump(t)
        assert len(wire) == 1  # backoff (4s) still pending
        client.pump(14)
        assert len(wire) == 2 and wire[1][0] == 14  # resent after backoff
        assert client.pending_batches == 1

    def test_abandoned_after_timeout_on_final_attempt(self):
        obs = Observability()
        policy = RetryPolicy(timeout=5, max_attempts=2, backoff_base=1.0,
                             backoff_factor=1.0, jitter=0.0)
        client, wire = make_client(policy, obs=obs)
        client.upload(0, [make_sample()])
        for t in range(1, 40):
            client.pump(t)
        # Attempt 1 timed out, attempt 2 (the final one) timed out too:
        # the batch is dropped with a counted reason, never retried again.
        assert len(wire) == 2
        assert client.pending_batches == 0
        assert client.batches_abandoned == 1
        assert obs.metrics.total("upload_batches_abandoned") == 1
        assert obs.metrics.total("upload_timeouts") == 2

    def test_ack_during_backoff_cancels_resend(self):
        policy = RetryPolicy(timeout=5, max_attempts=5, backoff_base=10.0,
                             backoff_factor=1.0, jitter=0.0)
        client, wire = make_client(policy)
        batch_id = client.upload(0, [make_sample()])
        for t in range(1, 7):
            client.pump(t)  # timed out at t=5, resend due at t=15
        client.on_ack(7, Ack(batch_id=batch_id, machine="m0"))
        for t in range(8, 30):
            client.pump(t)
        assert len(wire) == 1  # the scheduled resend never fired
        assert client.pending_batches == 0


class TestDuplicateDelivery:
    def test_endpoint_ingests_once_but_reacks(self):
        endpoint, ingested, acks = make_endpoint()
        batch = SampleBatch(batch_id="m0/0", machine="m0", sent_at=0,
                            samples=(make_sample(),))
        endpoint.receive(1, batch)
        endpoint.receive(2, batch)  # duplicated in flight
        assert len(ingested) == 1
        assert len(acks) == 2  # re-acked so the client stops retrying
        assert endpoint.duplicates_ignored == 1

    def test_duplicate_ack_is_counted_and_ignored(self):
        obs = Observability()
        client, wire = make_client(obs=obs)
        batch_id = client.upload(0, [make_sample()])
        ack = Ack(batch_id=batch_id, machine="m0")
        client.on_ack(1, ack)
        client.on_ack(2, ack)  # the ack link duplicated it
        assert client.batches_acked == 1
        assert obs.metrics.total("upload_acks_ignored") == 1

    def test_end_to_end_duplicate_is_idempotent(self):
        obs = Observability()
        client, wire = make_client(obs=obs)
        endpoint, ingested, acks = make_endpoint(obs=obs)
        client.upload(0, [make_sample()])
        _, batch = wire[0]
        endpoint.receive(1, batch)
        endpoint.receive(1, batch)
        for t, ack in acks:
            client.on_ack(t + 1, ack)
        assert len(ingested) == 1
        assert client.pending_batches == 0
        for t in range(2, 60):
            client.pump(t)
        assert len(wire) == 1  # no spurious retries either


class TestResendQueueOverflow:
    def test_drop_oldest_evicts_longest_waiting(self):
        obs = Observability()
        policy = RetryPolicy(queue_limit=2, overflow="drop-oldest",
                             jitter=0.0)
        client, wire = make_client(policy, obs=obs)
        ids = [client.upload(t, [make_sample()]) for t in range(3)]
        assert ids[2] is not None  # the newcomer was admitted
        assert client.pending_batches == 2
        assert client.batches_overflowed == 1
        # The oldest batch is gone: its late ack is now a no-op.
        client.on_ack(5, Ack(batch_id=ids[0], machine="m0"))
        assert client.batches_acked == 0
        assert obs.metrics.total("resend_queue_overflow") == 1

    def test_drop_newest_rejects_incoming(self):
        obs = Observability()
        policy = RetryPolicy(queue_limit=2, overflow="drop-newest",
                             jitter=0.0)
        client, wire = make_client(policy, obs=obs)
        ids = [client.upload(t, [make_sample()]) for t in range(3)]
        assert ids[2] is None
        assert len(wire) == 2  # the rejected batch never hit the wire
        assert client.pending_batches == 2
        # The two admitted batches are still the live ones.
        client.on_ack(5, Ack(batch_id=ids[0], machine="m0"))
        assert client.batches_acked == 1
        assert obs.metrics.total("resend_queue_overflow") == 1


class TestBackoffDeterminism:
    """Jittered backoff is reproducible: same seed, same schedule."""

    def test_same_rng_seed_same_jittered_schedule(self):
        policy = RetryPolicy(timeout=10, max_attempts=5, backoff_base=4.0,
                             backoff_factor=2.0, jitter=0.5)

        def schedule(seed):
            rng = np.random.default_rng(seed)
            return [policy.backoff(n, rng) for n in range(1, 5)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_jitter_stays_within_the_advertised_swing(self):
        policy = RetryPolicy(backoff_base=8.0, backoff_factor=1.0,
                             backoff_cap=60.0, jitter=0.25)
        rng = np.random.default_rng(3)
        values = [policy.backoff(1, rng) for _ in range(200)]
        assert all(6.0 <= v <= 10.0 for v in values)  # 8 +/- 25%
        assert len(set(values)) > 1                   # actually jittered

    def test_same_seed_same_resend_ticks_end_to_end(self):
        policy = RetryPolicy(timeout=5, max_attempts=4, backoff_base=3.0,
                             backoff_factor=2.0, jitter=0.5)

        def resend_ticks(seed):
            wire = []
            client = UploadClient(
                "m0", send=lambda t, batch: wire.append(t), policy=policy,
                rng=np.random.default_rng(seed), obs=None)
            client.upload(0, [make_sample()])
            for t in range(1, 120):
                client.pump(t)
            return wire

        assert resend_ticks(42) == resend_ticks(42)
        assert len(resend_ticks(42)) == 4  # initial send + three retries


class TestOutageLongerThanBackoffSchedule:
    """An endpoint down past the client's whole retry budget: the batch is
    abandoned with counted telemetry; one down shorter, it gets through."""

    def _run(self, down_until: int, seconds: int = 200):
        obs = Observability()
        policy = RetryPolicy(timeout=5, max_attempts=3, backoff_base=2.0,
                             backoff_factor=2.0, jitter=0.0)
        up = {"at": down_until}
        endpoint, ingested, acks = make_endpoint(obs=obs)
        endpoint.gate = lambda: clock["t"] >= up["at"]
        clock = {"t": 0}
        wire = []
        client = UploadClient(
            "m0", send=lambda t, batch: wire.append((t, batch)), policy=policy,
            rng=np.random.default_rng(0), obs=obs)
        client.upload(0, [make_sample()])
        for t in range(1, seconds):
            clock["t"] = t
            # Deliver every send of this tick, then advance the retry loop.
            while wire:
                _, batch = wire.pop(0)
                endpoint.receive(t, batch)
            for at, ack in list(acks):
                acks.remove((at, ack))
                client.on_ack(t, ack)
            client.pump(t)
        return client, endpoint, ingested, obs

    def test_outage_longer_than_full_schedule_abandons(self):
        # Full schedule: timeout 5 + (2 + 5) + (4 + 5) = last attempt dead
        # by t=21; an endpoint down past that sees only refused sends.
        client, endpoint, ingested, obs = self._run(down_until=100)
        assert client.batches_abandoned == 1
        assert client.pending_batches == 0
        assert ingested == []
        assert endpoint.batches_refused == 3  # every attempt was refused
        assert obs.metrics.total("upload_batches_abandoned") == 1
        assert obs.metrics.total("aggregator_batches_refused") == 3

    def test_outage_shorter_than_schedule_recovers(self):
        client, endpoint, ingested, obs = self._run(down_until=10)
        assert client.batches_abandoned == 0
        assert client.batches_acked == 1
        assert len(ingested) == 1
        assert endpoint.batches_refused > 0   # early attempts were refused
        assert obs.metrics.total("upload_batches_abandoned") == 0
