"""Tests for fault profiles and the injectable transport layer."""

import numpy as np
import pytest

from repro.faults.profile import (
    FAULT_PROFILES,
    FaultProfile,
    LinkFaults,
    RetryPolicy,
    resolve_fault_profile,
)
from repro.faults.transport import REORDER_HOLDBACK_SECONDS, FaultyLink
from repro.obs import Observability


class ScriptedRng:
    """A stand-in generator whose draws are scripted by the test."""

    def __init__(self, randoms=(), integers=()):
        self._randoms = list(randoms)
        self._integers = list(integers)

    def random(self):
        return self._randoms.pop(0)

    def integers(self, low, high=None):
        return self._integers.pop(0)


def make_link(faults, seed=1, corrupter=None, obs=None, rng=None):
    received = []
    link = FaultyLink(
        "upload:test", faults,
        rng if rng is not None else np.random.default_rng(seed),
        deliver=lambda t, payload: received.append((t, payload)),
        corrupter=corrupter, obs=obs)
    return link, received


class TestProfiles:
    def test_presets_exist_and_none_is_zero(self):
        assert set(FAULT_PROFILES) == {"none", "light", "moderate", "heavy"}
        assert FAULT_PROFILES["none"].is_zero
        assert not FAULT_PROFILES["moderate"].is_zero

    def test_resolve_accepts_name_instance_and_none(self):
        assert resolve_fault_profile(None).is_zero
        assert resolve_fault_profile("moderate") is FAULT_PROFILES["moderate"]
        custom = FaultProfile(name="x", agent_crash_rate=0.5)
        assert resolve_fault_profile(custom) is custom

    def test_resolve_unknown_name_lists_valid(self):
        with pytest.raises(KeyError, match="moderate"):
            resolve_fault_profile("catastrophic")

    def test_link_rate_validation(self):
        with pytest.raises(ValueError, match="drop_rate"):
            LinkFaults(drop_rate=1.5)
        with pytest.raises(ValueError, match="delay_max"):
            LinkFaults(delay_min=10, delay_max=5)

    def test_crash_rate_validation(self):
        with pytest.raises(ValueError, match="agent_crash_rate"):
            FaultProfile(agent_crash_rate=-0.1)

    def test_with_overrides_keeps_frozen_original(self):
        base = FAULT_PROFILES["moderate"]
        harsher = base.with_overrides(agent_crash_rate=0.5)
        assert harsher.agent_crash_rate == 0.5
        assert base.agent_crash_rate != 0.5


class TestRetryPolicyBackoff:
    def test_nominal_sequence_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base=2.0, backoff_factor=2.0,
                             backoff_cap=10.0, jitter=0.0)
        assert [policy.backoff(n) for n in (1, 2, 3, 4)] == [2.0, 4.0, 8.0,
                                                             10.0]

    def test_jitter_stays_within_swing(self):
        policy = RetryPolicy(backoff_base=8.0, backoff_factor=1.0, jitter=0.5)
        rng = np.random.default_rng(0)
        values = [policy.backoff(1, rng) for _ in range(200)]
        assert all(4.0 <= v <= 12.0 for v in values)
        assert max(values) > 8.0 > min(values)  # jitter actually applied

    def test_retry_number_validated(self):
        with pytest.raises(ValueError, match="retry_number"):
            RetryPolicy().backoff(0)

    def test_overflow_policy_validated(self):
        with pytest.raises(ValueError, match="overflow"):
            RetryPolicy(overflow="drop-random")


class TestFaultyLinkDelivery:
    def test_clean_link_delivers_in_order_with_one_tick_latency(self):
        link, received = make_link(LinkFaults())
        for t in range(3):
            link.send(t, f"m{t}")
            link.tick(t)
        assert received == [(1, "m0"), (2, "m1")]  # m2 still in flight
        link.tick(3)
        assert received[-1] == (3, "m2")
        assert link.total_faults == 0

    def test_nothing_delivered_reentrantly_from_send(self):
        link, received = make_link(LinkFaults())
        link.send(5, "payload")
        assert received == []  # base latency: earliest at the next pump

    def test_drop_everything(self):
        link, received = make_link(LinkFaults(drop_rate=1.0))
        for t in range(5):
            link.send(t, t)
        for t in range(10):
            link.tick(t)
        assert received == []
        assert link.fault_tallies["drop"] == 5
        assert link.in_flight == 0

    def test_duplicate_delivers_two_copies(self):
        link, received = make_link(LinkFaults(duplicate_rate=1.0))
        link.send(0, "once")
        link.tick(1)
        assert received == [(1, "once"), (1, "once")]
        assert link.fault_tallies["duplicate"] == 1

    def test_delay_adds_bounded_latency(self):
        link, received = make_link(
            LinkFaults(delay_rate=1.0, delay_min=5, delay_max=5))
        link.send(0, "late")
        for t in range(1, 6):
            link.tick(t)
            assert received == []
        link.tick(6)
        assert received == [(6, "late")]
        assert link.fault_tallies["delay"] == 1

    def test_reorder_lets_later_traffic_overtake(self):
        # First draw reorders message A; second leaves B alone.
        rng = ScriptedRng(randoms=[0.0, 0.99])
        link, received = make_link(LinkFaults(reorder_rate=0.5), rng=rng)
        link.send(0, "A")  # held back to t=1+REORDER_HOLDBACK
        link.send(1, "B")  # due at t=2
        for t in range(1, 2 + REORDER_HOLDBACK_SECONDS):
            link.tick(t)
        assert [p for _, p in received] == ["B", "A"]
        assert link.fault_tallies["reorder"] == 1

    def test_corrupt_transforms_payload_and_counts(self):
        link, received = make_link(
            LinkFaults(corrupt_rate=1.0),
            corrupter=lambda payload, rng: f"garbled({payload})")
        link.send(0, "clean")
        link.tick(1)
        assert received == [(1, "garbled(clean)")]
        assert link.fault_tallies["corrupt"] == 1

    def test_corrupt_skipped_without_corrupter(self):
        link, received = make_link(LinkFaults(corrupt_rate=1.0),
                                   corrupter=None)
        link.send(0, "clean")
        link.tick(1)
        assert received == [(1, "clean")]
        assert link.fault_tallies["corrupt"] == 0


class TestDeterminismAndVisibility:
    FAULTS = LinkFaults(drop_rate=0.2, delay_rate=0.3, delay_max=10,
                        duplicate_rate=0.1, reorder_rate=0.1,
                        corrupt_rate=0.1)

    def run_trace(self, seed):
        link, received = make_link(self.FAULTS, seed=seed,
                                   corrupter=lambda p, rng: f"X{p}")
        for t in range(100):
            link.send(t, f"m{t}")
            link.tick(t)
        for t in range(100, 160):
            link.tick(t)
        return received, link

    def test_same_seed_replays_exact_delivery_schedule(self):
        trace_a, link_a = self.run_trace(seed=7)
        trace_b, link_b = self.run_trace(seed=7)
        assert trace_a == trace_b
        assert link_a.fault_tallies == link_b.fault_tallies

    def test_different_seed_changes_schedule(self):
        trace_a, _ = self.run_trace(seed=7)
        trace_b, _ = self.run_trace(seed=8)
        assert trace_a != trace_b

    def test_every_fault_visible_in_obs_counters(self):
        obs = Observability()
        link, _ = make_link(self.FAULTS, seed=3,
                            corrupter=lambda p, rng: p, obs=obs)
        for t in range(200):
            link.send(t, t)
            link.tick(t)
        by_kind = {}
        for counter in obs.metrics.counters("transport_faults"):
            kind = dict(counter.labels)["kind"]
            by_kind[kind] = by_kind.get(kind, 0) + int(counter.value)
        assert by_kind == {k: v for k, v in link.fault_tallies.items() if v}
        assert link.total_faults > 0
        assert obs.metrics.total("transport_sent") == link.sent
