"""Unit tests for repro.core.forensics (the Dremel stand-in)."""

import pytest

from repro.core.agent import Incident
from repro.core.correlation import SuspectScore
from repro.core.forensics import ForensicsStore, IncidentRecord
from repro.core.policy import PolicyAction, PolicyDecision
from repro.cluster.task import SchedulingClass
from repro.testing import make_scripted_job


def make_incident(incident_id=1, t=100, victim_job="websearch",
                  antagonist_job="video", correlation=0.5,
                  action=PolicyAction.THROTTLE, recovered=True,
                  victim_cpi=2.0, post_cpi=1.0):
    target = None
    score = None
    if antagonist_job is not None:
        target = make_scripted_job(
            antagonist_job, [1.0],
            scheduling_class=SchedulingClass.BATCH).tasks[0]
        score = SuspectScore(target.name, antagonist_job, correlation)
    incident = Incident(
        incident_id=incident_id,
        machine="m0",
        time_seconds=t,
        victim_taskname=f"{victim_job}/0",
        victim_jobname=victim_job,
        victim_cpi=victim_cpi,
        cpi_threshold=1.2,
        suspects=[score] if score else [],
        decision=PolicyDecision(action=action, target=target, score=score),
    )
    incident.post_cpi = post_cpi
    incident.recovered = recovered
    return incident


class TestRecordFlattening:
    def test_from_incident(self):
        row = IncidentRecord.from_incident(make_incident())
        assert row.victim_job == "websearch"
        assert row.antagonist_job == "video"
        assert row.antagonist_task == "video/0"
        assert row.correlation == 0.5
        assert row.action == "throttle"
        assert row.recovered is True
        assert row.relative_cpi == pytest.approx(0.5)

    def test_no_target(self):
        row = IncidentRecord.from_incident(
            make_incident(antagonist_job=None, action=PolicyAction.NO_ACTION,
                          post_cpi=None, recovered=None))
        assert row.antagonist_job is None
        assert row.correlation is None
        assert row.relative_cpi is None


class TestStore:
    def test_record_and_len(self):
        store = ForensicsStore()
        store.record(make_incident(1))
        store.record(make_incident(2))
        assert len(store) == 2
        assert len(store.records) == 2

    def test_to_dicts(self):
        store = ForensicsStore()
        store.record(make_incident())
        (row,) = store.to_dicts()
        assert row["victim_job"] == "websearch"


class TestQuery:
    @pytest.fixture
    def store(self):
        store = ForensicsStore()
        store.record(make_incident(1, t=100, victim_job="search",
                                   antagonist_job="video", correlation=0.6))
        store.record(make_incident(2, t=200, victim_job="search",
                                   antagonist_job="mapreduce", correlation=0.4))
        store.record(make_incident(3, t=300, victim_job="ads",
                                   antagonist_job="video", correlation=0.5))
        store.record(make_incident(4, t=400, victim_job="ads",
                                   antagonist_job=None,
                                   action=PolicyAction.NO_ACTION,
                                   post_cpi=None, recovered=None))
        return store

    def test_where_equality(self, store):
        rows = store.query().where(victim_job="search").run()
        assert [r.incident_id for r in rows] == [1, 2]

    def test_where_unknown_field(self, store):
        with pytest.raises(ValueError, match="unknown field"):
            store.query().where(nonsense=1)

    def test_where_fn_and_chaining(self, store):
        rows = (store.query()
                .where(victim_job="search")
                .where_fn(lambda r: r.correlation and r.correlation > 0.5)
                .run())
        assert [r.incident_id for r in rows] == [1]

    def test_between(self, store):
        rows = store.query().between(150, 350).run()
        assert [r.incident_id for r in rows] == [2, 3]
        with pytest.raises(ValueError, match="empty time range"):
            store.query().between(10, 10)

    def test_order_by_descending_nones_last(self, store):
        rows = store.query().order_by("correlation", descending=True).run()
        assert [r.incident_id for r in rows] == [1, 3, 2, 4]

    def test_order_by_unknown_field(self, store):
        with pytest.raises(ValueError, match="unknown field"):
            store.query().order_by("bogus")

    def test_limit(self, store):
        rows = store.query().order_by("time_seconds").limit(2).run()
        assert [r.incident_id for r in rows] == [1, 2]
        with pytest.raises(ValueError):
            store.query().limit(-1)

    def test_group_count(self, store):
        counts = store.query().group_count("antagonist_job")
        assert counts == {"video": 2, "mapreduce": 1, None: 1}


class TestCannedAnalyses:
    @pytest.fixture
    def store(self):
        store = ForensicsStore()
        for i in range(3):
            store.record(make_incident(i, t=100 * i, victim_job="search",
                                       antagonist_job="video"))
        store.record(make_incident(10, t=50, victim_job="search",
                                   antagonist_job="mapreduce"))
        store.record(make_incident(11, t=60, victim_job="ads",
                                   antagonist_job="mapreduce"))
        return store

    def test_top_antagonists_overall(self, store):
        assert store.top_antagonists() == [("video", 3), ("mapreduce", 2)]

    def test_top_antagonists_per_victim_and_window(self, store):
        ranked = store.top_antagonists(victim_job="search", start=0, end=150)
        assert ranked == [("mapreduce", 1), ("video", 2)] or \
               ranked == [("video", 2), ("mapreduce", 1)]
        # Time window [0, 150) holds video incidents at t=0,100 and
        # mapreduce at t=50.
        assert dict(ranked) == {"video": 2, "mapreduce": 1}

    def test_scheduler_hints_threshold(self, store):
        assert store.scheduler_hints(min_incidents=2) == [("search", "video")]
        hints = store.scheduler_hints(min_incidents=1)
        assert ("ads", "mapreduce") in hints
        assert len(hints) == 3

    def test_scheduler_hints_validation(self, store):
        with pytest.raises(ValueError):
            store.scheduler_hints(0)


class TestGroupAgg:
    @pytest.fixture
    def store(self):
        store = ForensicsStore()
        store.record(make_incident(1, victim_job="search",
                                   antagonist_job="video", post_cpi=1.0,
                                   victim_cpi=2.0))
        store.record(make_incident(2, victim_job="search",
                                   antagonist_job="video", post_cpi=1.5,
                                   victim_cpi=2.0))
        store.record(make_incident(3, victim_job="ads",
                                   antagonist_job="mapreduce", post_cpi=1.8,
                                   victim_cpi=2.0))
        store.record(make_incident(4, victim_job="ads", antagonist_job=None,
                                   action=PolicyAction.NO_ACTION,
                                   post_cpi=None, recovered=None))
        return store

    def test_mean(self, store):
        means = store.query().group_agg("antagonist_job", "relative_cpi")
        assert means["video"] == pytest.approx((0.5 + 0.75) / 2)
        assert means["mapreduce"] == pytest.approx(0.9)

    def test_none_values_skipped(self, store):
        means = store.query().group_agg("victim_job", "relative_cpi")
        # incident 4 has relative_cpi None; ads still aggregates over one row
        assert means["ads"] == pytest.approx(0.9)

    def test_min_max_sum_count(self, store):
        q = store.query().where(antagonist_job="video")
        assert q.group_agg("victim_job", "relative_cpi", "min")["search"] == \
            pytest.approx(0.5)
        assert q.group_agg("victim_job", "relative_cpi", "max")["search"] == \
            pytest.approx(0.75)
        assert q.group_agg("victim_job", "relative_cpi", "count")["search"] == 2

    def test_median_even_and_odd(self, store):
        medians = store.query().group_agg("victim_job", "relative_cpi",
                                          "median")
        assert medians["search"] == pytest.approx(0.625)
        assert medians["ads"] == pytest.approx(0.9)

    def test_unknown_aggregate(self, store):
        with pytest.raises(ValueError, match="unknown aggregate"):
            store.query().group_agg("victim_job", "relative_cpi", "p99")

    def test_unknown_fields(self, store):
        with pytest.raises(ValueError, match="unknown field"):
            store.query().group_agg("nope", "relative_cpi")
        with pytest.raises(ValueError, match="unknown field"):
            store.query().group_agg("victim_job", "nope")
