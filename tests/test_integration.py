"""Full-system integration tests: cluster + pipeline + workloads together."""

import numpy as np
import pytest

from repro.cluster.job import Job
from repro.cluster.platform import get_platform
from repro.cluster.machine import Machine
from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.core.config import CpiConfig
from repro.core.pipeline import CpiPipeline
from repro.core.policy import PolicyAction
from repro.perf.sampler import SamplerConfig
from repro.workloads import (
    AntagonistKind,
    make_antagonist_job_spec,
    make_batch_job_spec,
    make_mapreduce_job_spec,
)
from repro.workloads.services import make_service_job_spec
from tests.conftest import make_spec


def build_cluster(n_machines=4, seed=11, config=None, noise=0.02):
    config = config or CpiConfig()
    machines = [
        Machine(f"m{i}", get_platform("westmere-2.6"), cpi_noise_sigma=noise)
        for i in range(n_machines)
    ]
    sim = ClusterSimulation(machines, SimConfig(
        seed=seed,
        sampler=SamplerConfig(config.sampling_duration,
                              config.sampling_period)))
    pipeline = CpiPipeline(sim, config)
    return sim, pipeline


class TestVictimProtectionScenario:
    def test_victim_cpi_improves_after_throttling(self):
        sim, pipeline = build_cluster(n_machines=2)
        victim = Job(make_service_job_spec("search", num_tasks=4, seed=3))
        antagonist = Job(make_antagonist_job_spec(
            "thrasher", AntagonistKind.CACHE_THRASHER, num_tasks=2, seed=4,
            demand_scale=1.5))
        sim.scheduler.submit(victim)
        sim.scheduler.submit(antagonist)
        pipeline.bootstrap_specs([make_spec(
            jobname="search", cpi_mean=1.05, cpi_stddev=0.08)])
        sim.run_minutes(45)
        throttled = [i for i in pipeline.all_incidents()
                     if i.decision.action is PolicyAction.THROTTLE
                     and i.recovered is not None]
        assert throttled, "expected at least one completed throttle episode"
        recovered = [i for i in throttled if i.recovered]
        assert len(recovered) / len(throttled) > 0.5
        rels = [i.relative_cpi for i in recovered if i.relative_cpi]
        assert np.median(rels) < 0.9

    def test_innocent_spinner_not_throttled(self):
        sim, pipeline = build_cluster(n_machines=1)
        victim = Job(make_service_job_spec("svc", num_tasks=2, seed=5))
        guilty = Job(make_antagonist_job_spec(
            "hog", AntagonistKind.MEMBW_HOG, num_tasks=1, seed=6,
            demand_scale=1.5))
        innocent = Job(make_antagonist_job_spec(
            "spin", AntagonistKind.CPU_SPINNER, num_tasks=1, seed=7,
            demand_scale=1.5))
        for job in (victim, guilty, innocent):
            sim.scheduler.submit(job)
        pipeline.bootstrap_specs([make_spec(
            jobname="svc", cpi_mean=1.05, cpi_stddev=0.08)])
        sim.run_minutes(45)
        throttle_targets = {
            i.decision.target.job.name
            for i in pipeline.all_incidents()
            if i.decision.action is PolicyAction.THROTTLE
        }
        assert "hog" in throttle_targets
        assert "spin" not in throttle_targets


class TestMapReduceUnderCapping:
    def test_worker_exits_after_repeated_caps(self):
        config = CpiConfig(hardcap_duration=180)
        sim, pipeline = build_cluster(n_machines=1, config=config)
        victim = Job(make_service_job_spec("svc", num_tasks=2, seed=8))
        mr = Job(make_mapreduce_job_spec("mr", num_workers=1, seed=9,
                                         demand_level=5.0,
                                         give_up_episode=2))
        # Make the MapReduce worker a heavy antagonist.
        sim.scheduler.submit(victim)
        sim.scheduler.submit(mr)
        pipeline.bootstrap_specs([make_spec(
            jobname="svc", cpi_mean=1.1, cpi_stddev=0.08)])
        sim.run_minutes(60)
        from repro.cluster.task import TaskState
        # The worker either exited under capping or is still throttle-cycling;
        # if it was capped twice it must be gone.
        caps_on_mr = [a for agent in pipeline.agents.values()
                      for a in agent.throttler.actions
                      if a.jobname == "mr"]
        if len(caps_on_mr) >= 2:
            assert mr.tasks[0].state is TaskState.EXITED


class TestLearningPipeline:
    def test_specs_converge_to_true_cpi(self):
        config = CpiConfig(spec_refresh_period=900, min_tasks_for_spec=4,
                           min_samples_per_task=5)
        sim, pipeline = build_cluster(n_machines=2, config=config, noise=0.01)
        job = Job(make_batch_job_spec("steady", num_tasks=6, seed=10))
        sim.scheduler.submit(job)
        sim.run_minutes(40)
        spec = pipeline.aggregator.spec_for("steady", "westmere-2.6")
        assert spec is not None
        # BatchWorkload base CPI 1.2 on westmere (scale 1.0), light mutual
        # contention pushes it slightly above.
        assert 1.1 < spec.cpi_mean < 1.8
        assert spec.cpi_stddev < 0.4

    def test_no_incidents_without_interference(self):
        config = CpiConfig(spec_refresh_period=900, min_tasks_for_spec=4,
                           min_samples_per_task=5)
        sim, pipeline = build_cluster(n_machines=4, config=config)
        job = Job(make_service_job_spec("calm", num_tasks=8, seed=12))
        sim.scheduler.submit(job)
        sim.run_minutes(60)
        throttles = [i for i in pipeline.all_incidents()
                     if i.decision.action is PolicyAction.THROTTLE]
        assert throttles == []
