"""Unit tests for repro.cluster.interference (the contention model)."""

import pytest

from repro.cluster.interference import (
    InterferenceModel,
    ResourceProfile,
)
from repro.cluster.platform import get_platform
from repro.testing import NOISY_NEIGHBOR_PROFILE, QUIET_PROFILE, SENSITIVE_PROFILE


@pytest.fixture
def model():
    return InterferenceModel()


@pytest.fixture
def platform():
    return get_platform("westmere-2.6")


class TestResourceProfile:
    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError, match="cache_mib_per_cpu"):
            ResourceProfile(cache_mib_per_cpu=-1.0, membw_gbps_per_cpu=0.0)

    def test_defaults(self):
        p = ResourceProfile(cache_mib_per_cpu=1.0, membw_gbps_per_cpu=1.0)
        assert p.cache_sensitivity == 1.0
        assert p.cold_start_penalty == 0.0


class TestContention:
    def test_empty_machine_has_no_pressure(self, model, platform):
        c = model.contention(platform, [])
        assert c.cache_pressure == 0.0
        assert c.membw_pressure == 0.0

    def test_pressure_scales_with_usage(self, model, platform):
        c1 = model.contention(platform, [("a", 1.0, NOISY_NEIGHBOR_PROFILE)])
        c2 = model.contention(platform, [("a", 2.0, NOISY_NEIGHBOR_PROFILE)])
        assert c2.cache_pressure == pytest.approx(2 * c1.cache_pressure)

    def test_pressure_normalised_to_platform(self, model):
        small = get_platform("nehalem-2.3")     # 8 MiB LLC
        big = get_platform("sandybridge-2.9")   # 20 MiB LLC
        usage = [("a", 1.0, NOISY_NEIGHBOR_PROFILE)]
        assert (model.contention(small, usage).cache_pressure
                > model.contention(big, usage).cache_pressure)

    def test_others_excludes_own_contribution(self, model, platform):
        c = model.contention(platform, [
            ("a", 1.0, NOISY_NEIGHBOR_PROFILE),
            ("b", 1.0, NOISY_NEIGHBOR_PROFILE),
        ])
        assert c.others_cache("a") == pytest.approx(c.cache_contrib["b"])
        assert c.others_cache("unknown") == pytest.approx(c.cache_pressure)

    def test_idle_task_exerts_nothing(self, model, platform):
        c = model.contention(platform, [("a", 0.0, NOISY_NEIGHBOR_PROFILE)])
        assert c.cache_pressure == 0.0

    def test_negative_usage_rejected(self, model, platform):
        with pytest.raises(ValueError, match="usage"):
            model.contention(platform, [("a", -1.0, QUIET_PROFILE)])


class TestEffectiveCpi:
    def test_alone_equals_base_times_platform(self, model, platform):
        c = model.contention(platform, [("v", 1.0, SENSITIVE_PROFILE)])
        cpi = model.effective_cpi("v", 1.5, SENSITIVE_PROFILE, c, platform, 1.0)
        assert cpi == pytest.approx(1.5 * platform.cpi_scale)

    def test_antagonist_inflates_victim(self, model, platform):
        usages = [("v", 1.0, SENSITIVE_PROFILE),
                  ("a", 4.0, NOISY_NEIGHBOR_PROFILE)]
        c = model.contention(platform, usages)
        alone = model.contention(platform, usages[:1])
        cpi_with = model.effective_cpi("v", 1.5, SENSITIVE_PROFILE, c,
                                       platform, 1.0)
        cpi_alone = model.effective_cpi("v", 1.5, SENSITIVE_PROFILE, alone,
                                        platform, 1.0)
        assert cpi_with > cpi_alone * 1.5  # a hot antagonist hurts a lot

    def test_insensitive_victim_unaffected(self, model, platform):
        usages = [("v", 1.0, QUIET_PROFILE),
                  ("a", 4.0, NOISY_NEIGHBOR_PROFILE)]
        c = model.contention(platform, usages)
        cpi = model.effective_cpi("v", 1.0, QUIET_PROFILE, c, platform, 1.0)
        assert cpi == pytest.approx(1.0 * platform.cpi_scale)

    def test_quiet_antagonist_harmless(self, model, platform):
        # The CPU-spinner scenario: high usage, negligible footprint.
        spinner = ResourceProfile(cache_mib_per_cpu=0.05,
                                  membw_gbps_per_cpu=0.05)
        usages = [("v", 1.0, SENSITIVE_PROFILE), ("s", 8.0, spinner)]
        c = model.contention(platform, usages)
        cpi = model.effective_cpi("v", 1.5, SENSITIVE_PROFILE, c, platform, 1.0)
        assert cpi < 1.5 * platform.cpi_scale * 1.1

    def test_inflation_monotone_in_antagonist_usage(self, model, platform):
        cpis = []
        for usage in (0.5, 1.0, 2.0, 4.0):
            c = model.contention(platform, [
                ("v", 1.0, SENSITIVE_PROFILE),
                ("a", usage, NOISY_NEIGHBOR_PROFILE)])
            cpis.append(model.effective_cpi("v", 1.5, SENSITIVE_PROFILE, c,
                                            platform, 1.0))
        assert cpis == sorted(cpis)
        assert cpis[-1] > cpis[0]

    def test_saturation_is_sublinear(self, model, platform):
        def inflation(u):
            c = model.contention(platform, [
                ("v", 1.0, SENSITIVE_PROFILE),
                ("a", u, NOISY_NEIGHBOR_PROFILE)])
            return model.inflation("v", SENSITIVE_PROFILE, c)

        # Doubling pressure must less-than-double inflation.
        assert inflation(8.0) < 2 * inflation(4.0)

    def test_bad_base_cpi_rejected(self, model, platform):
        c = model.contention(platform, [])
        with pytest.raises(ValueError, match="base_cpi"):
            model.effective_cpi("v", 0.0, QUIET_PROFILE, c, platform, 1.0)


class TestColdStart:
    def test_penalty_at_zero_usage(self, model, platform):
        profile = ResourceProfile(cache_mib_per_cpu=1.0, membw_gbps_per_cpu=1.0,
                                  cold_start_penalty=4.0)
        assert model.cold_start_factor(profile, 0.0) == pytest.approx(5.0)

    def test_penalty_decays_with_usage(self, model):
        profile = ResourceProfile(cache_mib_per_cpu=1.0, membw_gbps_per_cpu=1.0,
                                  cold_start_penalty=4.0)
        factors = [model.cold_start_factor(profile, u)
                   for u in (0.0, 0.05, 0.25, 1.0)]
        assert factors == sorted(factors, reverse=True)
        assert factors[-1] == pytest.approx(1.0, abs=0.01)

    def test_no_penalty_configured(self, model):
        assert model.cold_start_factor(QUIET_PROFILE, 0.0) == 1.0

    def test_case3_magnitude(self, model, platform):
        # Case 3: CPI fluctuated "from about 3 to about 10" as usage went
        # bimodal.  A cold-start penalty of ~4 with base ~1.4 spans that.
        profile = ResourceProfile(cache_mib_per_cpu=1.0, membw_gbps_per_cpu=1.0,
                                  cold_start_penalty=4.0)
        c = model.contention(platform, [("v", 0.05, profile)])
        low = model.effective_cpi("v", 1.4, profile, c, platform, 0.05)
        high_usage = model.effective_cpi("v", 1.4, profile, c, platform, 0.35)
        assert low / high_usage > 2.0


class TestMissRate:
    def test_baseline_when_alone(self, model, platform):
        c = model.contention(platform, [("v", 1.0, SENSITIVE_PROFILE)])
        assert model.l3_mpki("v", SENSITIVE_PROFILE, c) == pytest.approx(
            SENSITIVE_PROFILE.base_l3_mpki)

    def test_miss_rate_tracks_inflation(self, model, platform):
        # Figure 15c: relative L3 misses/instruction correlates with
        # relative CPI.  In-model the coupling is linear by construction.
        c = model.contention(platform, [
            ("v", 1.0, SENSITIVE_PROFILE),
            ("a", 4.0, NOISY_NEIGHBOR_PROFILE)])
        inflation = model.inflation("v", SENSITIVE_PROFILE, c)
        mpki = model.l3_mpki("v", SENSITIVE_PROFILE, c)
        expected = SENSITIVE_PROFILE.base_l3_mpki * (1 + 0.9 * inflation)
        assert mpki == pytest.approx(expected)

    def test_model_validation(self):
        with pytest.raises(ValueError, match="cold_start_scale"):
            InterferenceModel(cold_start_scale=0.0)
        with pytest.raises(ValueError, match="miss_rate_coupling"):
            InterferenceModel(miss_rate_coupling=-0.1)
