"""Unit tests for repro.cluster.machine (allocation, counters, departures)."""

import pytest

from repro.cluster.task import SchedulingClass, TaskState
from repro.perf.events import CounterEvent
from repro.testing import (
    NOISY_NEIGHBOR_PROFILE,
    SENSITIVE_PROFILE,
    ScriptedWorkload,
    make_quiet_machine,
    make_scripted_job,
)


def place(machine, job):
    for task in job:
        machine.place(task)
    return list(job)


class TestPlacement:
    def test_place_and_lookup(self, machine):
        job = make_scripted_job("j", [1.0], num_tasks=2)
        place(machine, job)
        assert machine.num_tasks == 2
        assert machine.has_task("j/0")
        assert machine.get_task("j/1").name == "j/1"
        assert machine.resident_cgroup_names() == ["j/0", "j/1"]

    def test_double_place_rejected(self, machine):
        job = make_scripted_job("j", [1.0])
        place(machine, job)
        with pytest.raises(ValueError, match="already"):
            machine.place(job.tasks[0])

    def test_remove_marks_state_and_drops_counters(self, machine):
        job = make_scripted_job("j", [1.0])
        place(machine, job)
        machine.tick(0)
        assert "j/0" in machine.counters.known_cgroups()
        removed = machine.remove("j/0", TaskState.KILLED, reason="op")
        assert removed.state is TaskState.KILLED
        assert "j/0" not in machine.counters.known_cgroups()
        assert machine.num_tasks == 0

    def test_remove_unknown_raises(self, machine):
        with pytest.raises(KeyError, match="no task"):
            machine.remove("ghost/0", TaskState.KILLED)

    def test_get_unknown_raises(self, machine):
        with pytest.raises(KeyError, match="no task"):
            machine.get_task("ghost/0")


class TestAllocation:
    def test_undersubscribed_grants_demand(self, machine):
        job = make_scripted_job("j", [1.5], cpu_limit=4.0)
        place(machine, job)
        result = machine.tick(0)
        assert result.grants["j/0"] == pytest.approx(1.5)

    def test_cgroup_limit_clips_demand(self, machine):
        job = make_scripted_job("j", [5.0], cpu_limit=2.0)
        place(machine, job)
        result = machine.tick(0)
        assert result.grants["j/0"] == pytest.approx(2.0)

    def test_ls_priority_over_batch_when_oversubscribed(self, machine):
        # 24 cores; LS wants 20, batch wants 20 -> LS gets 20, batch 4.
        ls = make_scripted_job("ls", [20.0], cpu_limit=24.0)
        batch = make_scripted_job("batch", [20.0], cpu_limit=24.0,
                                  scheduling_class=SchedulingClass.BATCH)
        place(machine, ls)
        place(machine, batch)
        result = machine.tick(0)
        assert result.grants["ls/0"] == pytest.approx(20.0)
        assert result.grants["batch/0"] == pytest.approx(4.0)

    def test_pro_rata_within_saturated_tier(self, machine):
        # Two batch tasks want 20 each; 24 cores -> each gets 12.
        j1 = make_scripted_job("b1", [20.0], cpu_limit=24.0,
                               scheduling_class=SchedulingClass.BATCH)
        j2 = make_scripted_job("b2", [20.0], cpu_limit=24.0,
                               scheduling_class=SchedulingClass.BATCH)
        place(machine, j1)
        place(machine, j2)
        result = machine.tick(0)
        assert result.grants["b1/0"] == pytest.approx(12.0)
        assert result.grants["b2/0"] == pytest.approx(12.0)

    def test_best_effort_starves_last(self, machine):
        ls = make_scripted_job("ls", [12.0], cpu_limit=24.0)
        batch = make_scripted_job("b", [12.0], cpu_limit=24.0,
                                  scheduling_class=SchedulingClass.BATCH)
        be = make_scripted_job("be", [12.0], cpu_limit=24.0,
                               scheduling_class=SchedulingClass.BEST_EFFORT)
        for job in (ls, batch, be):
            place(machine, job)
        result = machine.tick(0)
        assert result.grants["ls/0"] == pytest.approx(12.0)
        assert result.grants["b/0"] == pytest.approx(12.0)
        assert result.grants["be/0"] == pytest.approx(0.0)

    def test_hard_cap_bites(self, machine):
        job = make_scripted_job("b", [8.0], cpu_limit=8.0,
                                scheduling_class=SchedulingClass.BATCH)
        task = place(machine, job)[0]
        task.cgroup.apply_cap(quota=0.1, now=0, duration=300)
        result = machine.tick(0)
        assert result.grants["b/0"] == pytest.approx(0.1)

    def test_empty_machine_tick(self, machine):
        result = machine.tick(0)
        assert result.grants == {}
        assert result.departures == []


class TestCounters:
    def test_cycles_match_grant_and_clock(self, machine):
        job = make_scripted_job("j", [2.0], cpu_limit=4.0)
        place(machine, job)
        machine.tick(0)
        counters = machine.counters.counters_for("j/0")
        expected_cycles = 2.0 * machine.platform.cycles_per_cpu_second
        assert counters.read(CounterEvent.CPU_CLK_UNHALTED_REF) == pytest.approx(
            expected_cycles)

    def test_cpi_equals_cycles_over_instructions(self, machine):
        job = make_scripted_job("j", [1.0], cpu_limit=4.0, base_cpi=1.5)
        place(machine, job)
        result = machine.tick(0)
        counters = machine.counters.counters_for("j/0")
        cycles = counters.read(CounterEvent.CPU_CLK_UNHALTED_REF)
        instructions = counters.read(CounterEvent.INSTRUCTIONS_RETIRED)
        assert cycles / instructions == pytest.approx(result.cpis["j/0"])

    def test_counters_accumulate_across_ticks(self, machine):
        job = make_scripted_job("j", [1.0], cpu_limit=4.0)
        place(machine, job)
        machine.tick(0)
        after_one = machine.counters.counters_for("j/0").read(
            CounterEvent.INSTRUCTIONS_RETIRED)
        machine.tick(1)
        after_two = machine.counters.counters_for("j/0").read(
            CounterEvent.INSTRUCTIONS_RETIRED)
        assert after_two == pytest.approx(2 * after_one, rel=0.01)

    def test_usage_charged_to_cgroup(self, machine):
        job = make_scripted_job("j", [1.5], cpu_limit=4.0)
        task = place(machine, job)[0]
        machine.tick(0)
        assert task.cgroup.last_usage() == pytest.approx(1.5)

    def test_context_switch_overhead_below_claim(self, machine):
        # The paper: "Total CPU overhead is less than 0.1%".
        for i in range(10):
            job = make_scripted_job(f"j{i}", [1.0], cpu_limit=2.0)
            place(machine, job)
        for t in range(100):
            machine.tick(t)
        fraction = machine.counters.overhead_fraction(machine.total_cpu_seconds)
        assert fraction < 0.001


class TestInterferenceIntegration:
    def test_victim_cpi_rises_with_antagonist(self, machine):
        victim = make_scripted_job("v", [1.0], cpu_limit=2.0,
                                   base_cpi=1.5, profile=SENSITIVE_PROFILE)
        place(machine, victim)
        alone = machine.tick(0).cpis["v/0"]
        antagonist = make_scripted_job(
            "a", [6.0], cpu_limit=8.0,
            scheduling_class=SchedulingClass.BATCH,
            profile=NOISY_NEIGHBOR_PROFILE)
        place(machine, antagonist)
        together = machine.tick(1).cpis["v/0"]
        assert together > alone * 1.3

    def test_capping_antagonist_restores_victim(self, machine):
        victim = make_scripted_job("v", [1.0], cpu_limit=2.0,
                                   base_cpi=1.5, profile=SENSITIVE_PROFILE)
        antagonist = make_scripted_job(
            "a", [6.0], cpu_limit=8.0,
            scheduling_class=SchedulingClass.BATCH,
            profile=NOISY_NEIGHBOR_PROFILE)
        place(machine, victim)
        atask = place(machine, antagonist)[0]
        suffering = machine.tick(0).cpis["v/0"]
        atask.cgroup.apply_cap(quota=0.1, now=1, duration=300)
        relieved = machine.tick(1).cpis["v/0"]
        assert relieved < suffering * 0.75


class TestDepartures:
    def test_workload_exit_removes_task(self, machine):
        job = make_scripted_job("j", [1.0], exit_at=5)
        place(machine, job)
        for t in range(5):
            assert machine.tick(t).departures == []
        result = machine.tick(5)
        assert len(result.departures) == 1
        task, state = result.departures[0]
        assert task.name == "j/0"
        assert state is TaskState.EXITED
        assert machine.num_tasks == 0

    def test_workload_completion(self, machine):
        job = make_scripted_job("j", [1.0], complete_at=3)
        place(machine, job)
        for t in range(3):
            machine.tick(t)
        result = machine.tick(3)
        assert result.departures[0][1] is TaskState.COMPLETED

    def test_unknown_outcome_raises(self, machine):
        class BadWorkload(ScriptedWorkload):
            def on_tick(self, t, granted_usage, capped):
                return "vanished"

        job = make_scripted_job("j", [1.0])
        job.tasks[0].workload = BadWorkload([1.0])
        place(machine, job)
        with pytest.raises(ValueError, match="unknown outcome"):
            machine.tick(0)


class TestThreadCount:
    def test_sums_resident_workloads(self, machine):
        j1 = make_scripted_job("a", [1.0], threads=8)
        j2 = make_scripted_job("b", [1.0], threads=5)
        place(machine, j1)
        place(machine, j2)
        assert machine.thread_count(0) == 13

    def test_validation(self):
        with pytest.raises(ValueError, match="noise"):
            make_quiet_machine().__class__(
                "m", make_quiet_machine().platform, cpi_noise_sigma=-0.1)
