"""Unit tests for repro.workloads.mix (trace-statistics job populations)."""

import pytest

from repro.cluster.task import PriorityBand, SchedulingClass
from repro.workloads.mix import ClusterMix


@pytest.fixture(scope="module")
def population():
    mix = ClusterMix(total_cpu=24 * 200, seed=1)
    specs = mix.generate()
    return specs, ClusterMix.statistics(specs, mix.total_cpu)


class TestTraceStatistics:
    def test_production_job_fraction_near_7_percent(self, population):
        _, stats = population
        assert 0.03 <= stats.production_job_fraction <= 0.12

    def test_production_cpu_near_30_percent(self, population):
        _, stats = population
        assert 0.25 <= stats.production_cpu_fraction <= 0.35

    def test_nonproduction_cpu_near_10_percent(self, population):
        _, stats = population
        assert 0.07 <= stats.nonproduction_cpu_fraction <= 0.18

    def test_task_mass_in_large_jobs(self, population):
        # The paper's 96%/87% quantiles come from a 12k-machine cell; at
        # this scale the skew is present but softer.
        _, stats = population
        assert stats.tasks_in_jobs_of_10_plus >= 0.7
        assert stats.tasks_in_jobs_of_100_plus >= 0.5

    def test_most_jobs_are_small(self, population):
        specs, _ = population
        small = sum(1 for s in specs if s.num_tasks < 10)
        assert small / len(specs) > 0.5


class TestPopulationShape:
    def test_contains_both_bands_and_classes(self, population):
        specs, _ = population
        bands = {s.priority_band for s in specs}
        classes = {s.scheduling_class for s in specs}
        assert bands == {PriorityBand.PRODUCTION, PriorityBand.NONPRODUCTION}
        assert SchedulingClass.LATENCY_SENSITIVE in classes
        assert (SchedulingClass.BATCH in classes
                or SchedulingClass.BEST_EFFORT in classes)

    def test_names_unique(self, population):
        specs, _ = population
        names = [s.name for s in specs]
        assert len(names) == len(set(names))

    def test_deterministic_per_seed(self):
        a = ClusterMix(total_cpu=480, seed=9).generate()
        b = ClusterMix(total_cpu=480, seed=9).generate()
        assert [(s.name, s.num_tasks) for s in a] == \
               [(s.name, s.num_tasks) for s in b]

    def test_different_seeds_differ(self):
        a = ClusterMix(total_cpu=480, seed=9).generate()
        b = ClusterMix(total_cpu=480, seed=10).generate()
        assert [(s.name, s.num_tasks) for s in a] != \
               [(s.name, s.num_tasks) for s in b]

    def test_jobs_are_instantiable(self, population):
        from repro.cluster.job import Job
        specs, _ = population
        job = Job(specs[0])
        assert job.tasks[0].workload.cpu_demand(0) >= 0.0


class TestValidation:
    def test_bad_total_cpu(self):
        with pytest.raises(ValueError, match="total_cpu"):
            ClusterMix(total_cpu=0)

    def test_bad_fraction(self):
        with pytest.raises(ValueError, match="production_job_fraction"):
            ClusterMix(total_cpu=100, production_job_fraction=1.5)

    def test_empty_statistics(self):
        with pytest.raises(ValueError, match="empty"):
            ClusterMix.statistics([], 100)

    def test_padding_bounded(self):
        # Even with an extreme job-fraction target, generation terminates.
        mix = ClusterMix(total_cpu=480, production_job_fraction=0.001, seed=2)
        specs = mix.generate()
        assert len(specs) < 10_000
