"""Unit tests for the observability layer (repro.obs)."""

import io
import json
import logging

import pytest

from repro.obs import (
    JsonlFormatter,
    MetricsRegistry,
    Observability,
    StructuredLogger,
    Tracer,
    configure_logging,
    default_observability,
    render_metrics_report,
    reset_logging,
    set_default_observability,
)
from repro.obs.metrics import Counter, Histogram, render_key


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("events").inc(-1)

    def test_same_name_and_labels_is_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("drops", reason="rate_limited")
        b = registry.counter("drops", reason="rate_limited")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_label_sets_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("drops", reason="rate_limited").inc(2)
        registry.counter("drops", reason="no_cotenants").inc(3)
        assert registry.total("drops") == 5
        assert registry.value("drops", reason="rate_limited") == 2
        assert len(registry.counters("drops")) == 2

    def test_value_for_untouched_instrument_is_none(self):
        assert MetricsRegistry().value("nothing") is None


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("caps_active", machine="m1")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x")


class TestHistogram:
    def test_observe_updates_count_sum_extremes(self):
        hist = MetricsRegistry().histogram("cpi", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 9.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(14.0)
        assert hist.min == 0.5
        assert hist.max == 9.0
        assert hist.mean == pytest.approx(3.5)
        # Bucket occupancy: <=1, <=2, <=4, +Inf.
        assert hist.bucket_counts == [1, 1, 1, 1]

    def test_quantiles_clamped_to_observed_range(self):
        hist = Histogram("q", buckets=(1.0, 10.0))
        hist.observe(3.0)
        assert hist.quantile(0.0) >= 3.0 - 1e-9
        assert hist.quantile(0.5) == pytest.approx(3.0)
        assert hist.quantile(1.0) == pytest.approx(3.0)

    def test_empty_quantile_is_none(self):
        assert Histogram("q", buckets=(1.0,)).quantile(0.5) is None

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram("q", buckets=(1.0,)).quantile(1.5)

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Histogram("q", buckets=(1.0, 1.0))

    def test_summary_shape(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1.0)
        summary = hist.summary()
        assert set(summary) == {"count", "sum", "mean", "min", "max",
                                "p50", "p95", "p99"}


class TestRegistry:
    def test_snapshot_is_json_friendly(self):
        registry = MetricsRegistry()
        registry.counter("a", k="v").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(0.3)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["counters"]["a{k=v}"] == 1
        assert snapshot["gauges"]["g"] == 2
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.counters() == []
        assert registry.value("a") is None

    def test_render_key(self):
        assert render_key("n", ()) == "n"
        counter = Counter("n", (("a", "1"), ("b", "2")))
        assert render_key(counter.name, counter.labels) == "n{a=1,b=2}"


class TestStructuredLogger:
    def test_sink_receives_payload_with_clock_stamp(self):
        events = []
        logger = StructuredLogger(name="repro.test.sink", clock=lambda: 77)
        logger.add_sink(events.append)
        payload = logger.event("anomaly_detected", task="t/0", cpi=3.0)
        assert payload == {"event": "anomaly_detected", "t": 77,
                           "task": "t/0", "cpi": 3.0}
        assert events == [payload]

    def test_no_listeners_means_no_payload(self):
        # Nothing configured: level gates INFO out, and there is no sink,
        # so the hot path skips building the dict entirely.
        logging.getLogger("repro.test.mute").setLevel(logging.WARNING)
        logger = StructuredLogger(name="repro.test.mute")
        assert logger.event("sampled") is None

    def test_remove_sink(self):
        events = []
        logger = StructuredLogger(name="repro.test.rm")
        logger.add_sink(events.append)
        logger.remove_sink(events.append)
        logger.event("x")
        assert events == []


class TestJsonlLogging:
    def teardown_method(self):
        reset_logging()

    def test_events_land_in_jsonl_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        configure_logging(level="error", json_path=str(path),
                          stream=io.StringIO())
        logger = StructuredLogger(clock=lambda: 5)
        logger.event("cap_applied", task="ant/0", quota=0.1)
        logger.event("analysis_dropped", reason="rate_limited")
        for handler in logging.getLogger("repro").handlers:
            handler.flush()
        lines = [json.loads(line)
                 for line in path.read_text().strip().splitlines()]
        assert [e["event"] for e in lines] == ["cap_applied",
                                               "analysis_dropped"]
        assert lines[0] == {"event": "cap_applied", "t": 5,
                            "task": "ant/0", "quota": 0.1}

    def test_plain_records_wrapped_as_log_events(self):
        formatter = JsonlFormatter()
        record = logging.LogRecord("repro.x", logging.WARNING, __file__, 1,
                                   "plain %s", ("msg",), None)
        parsed = json.loads(formatter.format(record))
        assert parsed["event"] == "log"
        assert parsed["message"] == "plain msg"
        assert parsed["level"] == "warning"

    def test_reconfigure_does_not_stack_handlers(self, tmp_path):
        stream = io.StringIO()
        for _ in range(3):
            configure_logging(level="info", stream=stream)
        assert len(logging.getLogger("repro").handlers) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="loud")

    def test_console_level_filters(self):
        stream = io.StringIO()
        configure_logging(level="warning", stream=stream)
        logger = StructuredLogger()
        logger.event("quiet_info")
        logger.warning("loud_warning")
        output = stream.getvalue()
        assert "quiet_info" not in output
        assert "loud_warning" in output


class TestTracer:
    def test_trace_spans_and_durations(self):
        tracer = Tracer()
        trace = tracer.start_trace("incident", 100, machine="m1")
        trace.span("detect", 40, 100, violations=3)
        span = trace.span("followup", 100)
        assert span.duration is None
        span.finish(400, outcome="recovered")
        assert span.duration == 300
        assert trace.end == 400
        assert trace.find_span("detect").attributes["violations"] == 3
        assert tracer.find(trace.trace_id) is trace
        assert tracer.by_attribute(machine="m1") == [trace]
        assert tracer.by_attribute(machine="m2") == []

    def test_export_jsonl(self, tmp_path):
        tracer = Tracer()
        trace = tracer.start_trace("incident", 0)
        trace.span("detect", 0, 10)
        path = tmp_path / "traces.jsonl"
        assert tracer.export_jsonl(str(path)) == 1
        parsed = json.loads(path.read_text().strip())
        assert parsed["kind"] == "incident"
        assert parsed["spans"][0]["duration"] == 10

    def test_bounded_retention(self):
        tracer = Tracer(max_traces=2)
        for i in range(5):
            tracer.start_trace("t", i)
        assert len(tracer.traces) == 2
        assert [t.start for t in tracer.traces] == [3, 4]

    def test_bad_max_traces(self):
        with pytest.raises(ValueError):
            Tracer(max_traces=0)


class TestReport:
    def test_report_includes_counters_gauges_histograms_and_totals(self):
        registry = MetricsRegistry()
        registry.counter("incidents_by_action", action="throttle").inc(3)
        registry.counter("incidents_by_action", action="no-action").inc(1)
        registry.gauge("caps_active", machine="m1").set(2)
        registry.histogram("victim_cpi").observe(2.0)
        report = render_metrics_report(registry)
        assert report.startswith("== metrics ==")
        assert "incidents_by_action{action=throttle}" in report
        assert "incidents_by_action (total)" in report
        assert "caps_active{machine=m1}" in report
        assert "victim_cpi" in report

    def test_empty_registry(self):
        assert "(no metrics recorded)" in render_metrics_report(
            MetricsRegistry())


class TestObservabilityFacade:
    def test_bind_clock_stamps_events(self):
        obs = Observability()
        events = []
        obs.events.add_sink(events.append)
        obs.bind_clock(lambda: 42)
        obs.events.event("x")
        assert events[0]["t"] == 42

    def test_default_is_singleton_and_swappable(self):
        original = set_default_observability(None)
        try:
            first = default_observability()
            assert default_observability() is first
            mine = Observability()
            assert set_default_observability(mine) is first
            assert default_observability() is mine
        finally:
            set_default_observability(original)
