"""Observability threaded through the control loop: drop events, traces,
follow-up purging, and metric/incident consistency."""

import json

import pytest

from repro import (
    ClusterSimulation,
    CpiConfig,
    CpiPipeline,
    CpiSpec,
    Job,
    Machine,
    Observability,
    SimConfig,
    get_platform,
)
from repro.cli import _format_incident_line, main
from repro.cluster.task import SchedulingClass
from repro.core.agent import MachineAgent
from repro.core.policy import PolicyAction
from repro.obs import reset_logging
from repro.perf.sampler import CpiSampler, SamplerConfig
from repro.records import SpecKey
from repro.testing import (
    NOISY_NEIGHBOR_PROFILE,
    SENSITIVE_PROFILE,
    make_quiet_machine,
    make_scripted_job,
)
from repro.workloads import AntagonistKind, make_antagonist_job_spec
from repro.workloads.services import make_service_job_spec
from tests.conftest import make_sample, make_spec

FAST = CpiConfig(sampling_duration=5, sampling_period=15,
                 anomaly_window=120, correlation_window=300)


def capture_obs():
    """A fresh Observability with its events mirrored into a list."""
    obs = Observability()
    events = []
    obs.events.add_sink(events.append)
    return obs, events


def drops(events, reason=None):
    return [e for e in events if e["event"] == "analysis_dropped"
            and (reason is None or e["reason"] == reason)]


def build_rig(config=FAST, obs=None, with_antagonist=True):
    machine = make_quiet_machine()
    sampler = CpiSampler(machine, SamplerConfig(config.sampling_duration,
                                                config.sampling_period))
    agent = MachineAgent(machine, config, obs=obs)
    victim = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                               base_cpi=1.0, profile=SENSITIVE_PROFILE)
    machine.place(victim.tasks[0])
    if with_antagonist:
        antagonist = make_scripted_job(
            "ant", [6.0], cpu_limit=8.0,
            scheduling_class=SchedulingClass.BATCH,
            profile=NOISY_NEIGHBOR_PROFILE)
        machine.place(antagonist.tasks[0])
    agent.update_specs({
        SpecKey("victim", machine.platform.name): make_spec(
            jobname="victim", cpi_mean=1.0, cpi_stddev=0.1),
    })
    return machine, sampler, agent


def run_rig(machine, sampler, agent, seconds):
    for t in range(seconds):
        machine.tick(t)
        agent.tick(t)
        samples = sampler.tick(t)
        if samples:
            agent.ingest_samples(t, samples)


def anomaly_samples(taskname, times, platforminfo="westmere-2.6"):
    """Samples hot enough to flag at every timestamp given."""
    return [make_sample(jobname=taskname.split("/")[0],
                        platforminfo=platforminfo, t=t, cpu_usage=1.0,
                        cpi=5.0, taskname=taskname)
            for t in times]


class TestDropEvents:
    """Every silent drop path emits a distinct, counted, structured event."""

    def test_rate_limited_drop(self):
        # Two victims go anomalous inside the same ingest batch: the second
        # analysis hits the one-per-second rate limit.
        obs, events = capture_obs()
        config = FAST
        machine = make_quiet_machine()
        sampler = CpiSampler(machine, SamplerConfig(5, 15))
        agent = MachineAgent(machine, config, obs=obs)
        for name in ("v1", "v2"):
            job = make_scripted_job(name, [1.0], cpu_limit=2.0, base_cpi=1.0,
                                    profile=SENSITIVE_PROFILE)
            machine.place(job.tasks[0])
        antagonist = make_scripted_job(
            "ant", [6.0], cpu_limit=8.0,
            scheduling_class=SchedulingClass.BATCH,
            profile=NOISY_NEIGHBOR_PROFILE)
        machine.place(antagonist.tasks[0])
        agent.update_specs({
            SpecKey(name, machine.platform.name): make_spec(
                jobname=name, cpi_mean=1.0, cpi_stddev=0.1)
            for name in ("v1", "v2")
        })
        run_rig(machine, sampler, agent, 65)
        dropped = drops(events, "rate_limited")
        assert dropped
        assert dropped[0]["machine"] == machine.name
        assert obs.metrics.value("analyses_dropped",
                                 reason="rate_limited") == len(dropped)
        assert obs.metrics.value("analyses_rate_limited") == len(dropped)

    def test_victim_departed_drop(self):
        obs, events = capture_obs()
        machine = make_quiet_machine()
        agent = MachineAgent(machine, FAST, obs=obs)
        agent.update_specs({
            SpecKey("ghost", machine.platform.name): make_spec(
                jobname="ghost", cpi_mean=1.0, cpi_stddev=0.1),
        })
        # Three flagged samples for a task the machine does not host.
        for t in (0, 15, 30):
            agent.ingest_samples(t, anomaly_samples("ghost/0", [t]))
        dropped = drops(events, "victim_departed")
        assert len(dropped) == 1
        assert dropped[0]["task"] == "ghost/0"
        assert obs.metrics.value("analyses_dropped",
                                 reason="victim_departed") == 1

    def test_followup_in_flight_drop(self):
        # A cap that never expires inside the run keeps the follow-up open;
        # continued anomalies must be dropped (and now visibly so).
        obs, events = capture_obs()
        config = FAST.with_overrides(hardcap_duration=600)
        machine, sampler, agent = build_rig(config, obs=obs)
        run_rig(machine, sampler, agent, 200)
        throttles = [i for i in agent.incidents
                     if i.decision.action is PolicyAction.THROTTLE]
        assert len(throttles) == 1
        # The victim looks anomalous again while the cap is still in force.
        for t in (215, 230, 245):
            agent.ingest_samples(t, anomaly_samples(
                "victim/0", [t], platforminfo=machine.platform.name))
        dropped = drops(events, "followup_in_flight")
        assert dropped
        assert obs.metrics.value("analyses_dropped",
                                 reason="followup_in_flight") == len(dropped)

    def test_too_few_samples_drop(self):
        # A short correlation window leaves <2 usable victim samples.
        obs, events = capture_obs()
        config = FAST.with_overrides(correlation_window=10)
        machine = make_quiet_machine()
        agent = MachineAgent(machine, config, obs=obs)
        victim = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                                   base_cpi=1.0, profile=SENSITIVE_PROFILE)
        machine.place(victim.tasks[0])
        agent.update_specs({
            SpecKey("victim", machine.platform.name): make_spec(
                jobname="victim", cpi_mean=1.0, cpi_stddev=0.1),
        })
        for t in (0, 60, 120):
            agent.ingest_samples(t, anomaly_samples("victim/0", [t]))
        dropped = drops(events, "too_few_samples")
        assert len(dropped) == 1
        assert obs.metrics.value("analyses_dropped",
                                 reason="too_few_samples") == 1

    def test_no_cotenants_drop(self):
        obs, events = capture_obs()
        machine = make_quiet_machine()
        agent = MachineAgent(machine, FAST, obs=obs)
        victim = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                                   base_cpi=1.0, profile=SENSITIVE_PROFILE)
        machine.place(victim.tasks[0])
        agent.update_specs({
            SpecKey("victim", machine.platform.name): make_spec(
                jobname="victim", cpi_mean=1.0, cpi_stddev=0.1),
        })
        for t in (0, 60, 120):
            agent.ingest_samples(t, anomaly_samples("victim/0", [t]))
        dropped = drops(events, "no_cotenants")
        assert len(dropped) == 1
        assert obs.metrics.value("analyses_dropped", reason="no_cotenants") == 1

    def test_all_reasons_share_one_counter_family(self):
        obs, _ = capture_obs()
        machine = make_quiet_machine()
        agent = MachineAgent(machine, FAST, obs=obs)
        agent.update_specs({
            SpecKey("ghost", machine.platform.name): make_spec(
                jobname="ghost", cpi_mean=1.0, cpi_stddev=0.1),
        })
        for t in (0, 15, 30):
            agent.ingest_samples(t, anomaly_samples("ghost/0", [t]))
        assert obs.metrics.total("analyses_dropped") == 1


class TestAnomalyAndIncidentTelemetry:
    def test_anomaly_event_and_metrics(self):
        obs, events = capture_obs()
        machine, sampler, agent = build_rig(obs=obs)
        run_rig(machine, sampler, agent, 180)
        anomalies = [e for e in events if e["event"] == "anomaly_detected"]
        assert anomalies
        assert anomalies[0]["task"] == "victim/0"
        assert obs.metrics.value("anomalies_detected") == len(anomalies)
        assert obs.metrics.histograms("victim_cpi")[0].count == len(anomalies)

    def test_incident_carries_stage_trace(self):
        obs, _ = capture_obs()
        config = FAST.with_overrides(hardcap_duration=60)
        machine, sampler, agent = build_rig(config, obs=obs)
        run_rig(machine, sampler, agent, 300)
        throttled = [i for i in agent.incidents
                     if i.decision.action is PolicyAction.THROTTLE]
        assert throttled
        trace = throttled[0].trace
        assert trace is not None
        stages = [s.name for s in trace.spans]
        assert stages == ["detect", "identify", "decide", "actuate",
                          "followup"]
        followup = trace.find_span("followup")
        assert followup.duration == pytest.approx(60, abs=15)
        assert followup.attributes["outcome"] in ("recovered",
                                                  "still_suffering")
        assert trace.attributes["incident_id"] == throttled[0].incident_id

    def test_cap_applied_event_from_throttler(self):
        obs, events = capture_obs()
        machine, sampler, agent = build_rig(obs=obs)
        run_rig(machine, sampler, agent, 180)
        caps = [e for e in events if e["event"] == "cap_applied"]
        assert caps
        assert caps[0]["task"] == "ant/0"
        assert caps[0]["victim"] == "victim/0"
        assert obs.metrics.value("caps_applied") == len(caps)


class TestFollowupPurge:
    def test_departed_victim_purges_followup_and_finalises(self):
        obs, events = capture_obs()
        sunk = []
        config = FAST.with_overrides(hardcap_duration=600)
        machine, sampler, agent = build_rig(config, obs=obs)
        agent.incident_sink = sunk.append
        run_rig(machine, sampler, agent, 200)
        assert len(agent._followups) == 1
        incident = agent._followups[0].incident

        from repro.cluster.task import TaskState
        machine.remove("victim/0", TaskState.COMPLETED, 200)
        agent.forget_task("victim/0", now=200)

        assert agent._followups == []
        assert incident.recovered is True
        assert incident.post_cpi is None
        assert incident.relative_cpi is None
        assert incident in sunk
        purged = [e for e in events if e["event"] == "followup_purged"]
        assert len(purged) == 1
        assert purged[0]["reason"] == "victim_departed"
        assert obs.metrics.value("followups_purged") == 1
        assert obs.metrics.value("followups_completed",
                                 outcome="victim_gone") == 1

    def test_purge_unblocks_new_analysis_for_reused_name(self):
        # The in-flight check keys on task name; a stale follow-up for a
        # departed victim must not block a replacement task's analyses.
        config = FAST.with_overrides(hardcap_duration=600)
        machine, sampler, agent = build_rig(config)
        run_rig(machine, sampler, agent, 200)
        assert len(agent._followups) == 1

        from repro.cluster.task import TaskState
        machine.remove("victim/0", TaskState.COMPLETED, 200)
        agent.forget_task("victim/0", now=200)

        replacement = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                                        base_cpi=1.0,
                                        profile=SENSITIVE_PROFILE)
        machine.place(replacement.tasks[0])
        for t in (215, 230, 245):
            agent.ingest_samples(t, anomaly_samples(
                "victim/0", [t], platforminfo=machine.platform.name))
        # With the follow-up purged the new anomaly reaches a decision
        # instead of being swallowed by the in-flight check.
        assert len(agent.incidents) >= 2

    def test_forget_task_without_followups_still_clears_state(self):
        machine, sampler, agent = build_rig()
        run_rig(machine, sampler, agent, 60)
        agent.forget_task("victim/0")
        assert agent.detector.violations_for("victim/0") == 0
        assert agent._followups == []


class TestPipelineMetricsConsistency:
    def make_demo_pipeline(self, obs, minutes=12, seed=42):
        platform = get_platform("westmere-2.6")
        machine = Machine("demo", platform, cpi_noise_sigma=0.03)
        sim = ClusterSimulation([machine], SimConfig(seed=seed))
        pipeline = CpiPipeline(sim, CpiConfig(), obs=obs)
        sim.scheduler.submit(Job(make_service_job_spec(
            "frontend", num_tasks=1, seed=seed)))
        sim.scheduler.submit(Job(make_antagonist_job_spec(
            "video", AntagonistKind.VIDEO_PROCESSING, num_tasks=1,
            seed=seed + 1, demand_scale=1.3)))
        pipeline.bootstrap_specs([CpiSpec("frontend", platform.name, 10_000,
                                          1.0, 1.05, 0.08)])
        sim.run_minutes(minutes)
        return pipeline

    def test_incident_counts_match_incidents_by_action(self):
        obs = Observability()
        pipeline = self.make_demo_pipeline(obs)
        incidents = pipeline.all_incidents()
        assert incidents
        assert obs.metrics.total("incidents_by_action") == len(incidents)
        for action in {i.decision.action.value for i in incidents}:
            expected = sum(1 for i in incidents
                           if i.decision.action.value == action)
            assert obs.metrics.value("incidents_by_action",
                                     action=action) == expected

    def test_pipeline_wide_counters(self):
        obs = Observability()
        pipeline = self.make_demo_pipeline(obs)
        assert obs.metrics.value("samples_ingested") == pipeline.total_samples
        assert obs.metrics.value("sim_ticks") == pipeline.simulation.now
        report = pipeline.metrics_report()
        assert "incidents_by_action" in report
        assert "samples_ingested" in report

    def test_events_are_sim_time_stamped(self):
        obs = Observability()
        events = []
        obs.events.add_sink(events.append)
        self.make_demo_pipeline(obs)
        stamped = [e for e in events if e["event"] == "anomaly_detected"]
        assert stamped
        assert all(isinstance(e["t"], int) for e in stamped)


class TestCliObservability:
    def teardown_method(self):
        reset_logging()

    def test_relative_cpi_none_formats_as_na(self):
        # The departed-victim follow-up leaves recovered=True with no
        # post-CPI; the demo output must print n/a, not crash.
        from repro.core.agent import Incident
        from repro.core.policy import PolicyAction, PolicyDecision
        incident = Incident(
            incident_id=1, machine="m", time_seconds=60,
            victim_taskname="v/0", victim_jobname="v", victim_cpi=2.0,
            cpi_threshold=1.5, suspects=[],
            decision=PolicyDecision(action=PolicyAction.THROTTLE),
            post_cpi=None, recovered=True,
        )
        line = _format_incident_line(incident)
        assert "relative CPI=n/a" in line
        assert "recovered=True" in line

    def test_relative_cpi_present_formats_number(self):
        from repro.core.agent import Incident
        from repro.core.policy import PolicyAction, PolicyDecision
        incident = Incident(
            incident_id=2, machine="m", time_seconds=60,
            victim_taskname="v/0", victim_jobname="v", victim_cpi=2.0,
            cpi_threshold=1.5, suspects=[],
            decision=PolicyDecision(action=PolicyAction.THROTTLE),
            post_cpi=1.0, recovered=True,
        )
        assert "relative CPI=0.50" in _format_incident_line(incident)

    def test_demo_with_log_json_writes_parseable_events(self, tmp_path,
                                                        capsys):
        log_path = tmp_path / "run.jsonl"
        trace_path = tmp_path / "traces.jsonl"
        assert main(["demo", "--minutes", "10",
                     "--log-json", str(log_path),
                     "--trace-json", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "incidents_by_action" in out
        events = [json.loads(line)
                  for line in log_path.read_text().strip().splitlines()]
        kinds = {e["event"] for e in events}
        assert "anomaly_detected" in kinds
        assert "cap_applied" in kinds
        traces = [json.loads(line)
                  for line in trace_path.read_text().strip().splitlines()]
        assert traces
        assert {s["name"] for s in traces[0]["spans"]} >= {"detect",
                                                           "identify",
                                                           "decide"}

    def test_parser_accepts_obs_flags(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["demo", "--minutes", "5", "--log-level", "debug",
             "--log-json", "x.jsonl", "--trace-json", "t.jsonl"])
        assert args.log_level == "debug"
        assert args.log_json == "x.jsonl"
        assert args.trace_json == "t.jsonl"
        args = build_parser().parse_args(["experiment", "table2",
                                          "--log-level", "info"])
        assert args.log_level == "info"
