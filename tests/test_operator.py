"""Unit tests for repro.core.operator (the Section 5 operator interface)."""

import pytest

from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.core.config import CpiConfig
from repro.core.operator import OperatorConsole
from repro.core.pipeline import CpiPipeline
from repro.core.policy import PolicyAction
from repro.perf.sampler import SamplerConfig
from repro.testing import (
    NOISY_NEIGHBOR_PROFILE,
    SENSITIVE_PROFILE,
    make_quiet_machine,
    make_scripted_job,
)
from repro.cluster.task import SchedulingClass
from tests.conftest import make_spec

FAST = CpiConfig(sampling_duration=5, sampling_period=15,
                 anomaly_window=120, correlation_window=300,
                 hardcap_duration=60)


def build_deployment(n_machines=2, config=FAST):
    machines = [make_quiet_machine(f"m{i}") for i in range(n_machines)]
    sim = ClusterSimulation(machines, SimConfig(
        seed=4, sampler=SamplerConfig(config.sampling_duration,
                                      config.sampling_period)))
    pipeline = CpiPipeline(sim, config)
    victim = make_scripted_job("victim", [1.0], cpu_limit=2.0, base_cpi=1.0,
                               profile=SENSITIVE_PROFILE)
    antagonist = make_scripted_job("ant", [6.0], cpu_limit=8.0,
                                   scheduling_class=SchedulingClass.BATCH,
                                   profile=NOISY_NEIGHBOR_PROFILE)
    machines[0].place(victim.tasks[0])
    machines[0].place(antagonist.tasks[0])
    pipeline.bootstrap_specs([make_spec(jobname="victim", cpi_mean=1.0,
                                        cpi_stddev=0.1)])
    return sim, pipeline, victim, antagonist


class TestProtectionSwitch:
    def test_disable_stops_capping_but_not_detection(self):
        sim, pipeline, _victim, antagonist = build_deployment()
        console = OperatorConsole(pipeline)
        console.disable_protection()
        sim.run_minutes(6)
        incidents = pipeline.all_incidents()
        assert incidents  # detection and identification still run
        assert all(i.decision.action is not PolicyAction.THROTTLE
                   for i in incidents)
        assert not antagonist.tasks[0].cgroup.is_capped(sim.now)
        assert any(i.decision.action is PolicyAction.REPORT_ONLY
                   for i in incidents)

    def test_reenable(self):
        sim, pipeline, _victim, antagonist = build_deployment()
        console = OperatorConsole(pipeline)
        console.disable_protection()
        sim.run_minutes(3)
        console.enable_protection()
        assert console.protection_enabled
        sim.run_minutes(6)
        throttles = [i for i in pipeline.all_incidents()
                     if i.decision.action is PolicyAction.THROTTLE]
        assert throttles

    def test_initial_state_follows_config(self):
        sim, pipeline, *_ = build_deployment(
            config=FAST.with_overrides(auto_throttle=False))
        assert not OperatorConsole(pipeline).protection_enabled


class TestManualActions:
    def test_cap_and_release(self):
        sim, pipeline, _victim, antagonist = build_deployment()
        console = OperatorConsole(pipeline)
        action = console.cap_task("ant/0")
        assert antagonist.tasks[0].cgroup.is_capped(sim.now)
        assert action.quota == pytest.approx(0.1)  # batch-class default
        console.release_task("ant/0")
        assert not antagonist.tasks[0].cgroup.is_capped(sim.now)

    def test_cap_with_overrides(self):
        sim, pipeline, *_ = build_deployment()
        console = OperatorConsole(pipeline)
        action = console.cap_task("ant/0", quota=0.05, duration=30)
        assert action.quota == 0.05
        assert action.expires_at == sim.now + 30

    def test_unknown_task(self):
        _sim, pipeline, *_ = build_deployment()
        console = OperatorConsole(pipeline)
        with pytest.raises(KeyError, match="no running task"):
            console.cap_task("ghost/0")

    def test_kill_and_restart_moves_task(self):
        sim, pipeline, _victim, antagonist = build_deployment(n_machines=2)
        console = OperatorConsole(pipeline)
        new_machine = console.kill_and_restart("ant/0")
        assert new_machine == "m1"
        assert antagonist.tasks[0].machine_name == "m1"


class TestStatus:
    def test_status_reflects_activity(self):
        sim, pipeline, *_ = build_deployment()
        console = OperatorConsole(pipeline)
        before = console.status()
        assert before.machines == 2
        assert before.incidents_total == 0
        sim.run_minutes(8)
        after = console.status()
        assert after.anomalies_seen > 0
        assert after.incidents_total > 0
        assert after.active_caps >= 0

    def test_worst_offenders(self):
        sim, pipeline, *_ = build_deployment()
        console = OperatorConsole(pipeline)
        sim.run_minutes(10)
        offenders = console.worst_offenders()
        if offenders:
            assert offenders[0][0] == "ant"
