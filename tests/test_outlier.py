"""Unit tests for repro.core.outlier (Section 4.1 rules)."""

import pytest

from repro.core.config import CpiConfig
from repro.core.outlier import OutlierDetector
from tests.conftest import make_sample, make_spec


SPEC = make_spec(cpi_mean=1.0, cpi_stddev=0.1)  # threshold = 1.2


class TestFlagging:
    def test_above_two_sigma_flagged(self):
        detector = OutlierDetector()
        verdict, _ = detector.observe(make_sample(t=60, cpi=1.25), SPEC)
        assert verdict.flagged
        assert verdict.threshold == pytest.approx(1.2)

    def test_at_or_below_threshold_not_flagged(self):
        detector = OutlierDetector()
        verdict, _ = detector.observe(make_sample(t=60, cpi=1.2), SPEC)
        assert not verdict.flagged
        verdict, _ = detector.observe(make_sample(t=120, cpi=0.9), SPEC)
        assert not verdict.flagged

    def test_low_usage_gate(self):
        # "We ignore CPI measurements from tasks that use less than 0.25
        # CPU-sec/sec."
        detector = OutlierDetector()
        verdict, anomaly = detector.observe(
            make_sample(t=60, cpi=10.0, cpu_usage=0.2), SPEC)
        assert verdict.skipped
        assert verdict.skip_reason == "low-usage"
        assert anomaly is None
        assert detector.samples_skipped_low_usage == 1

    def test_usage_gate_boundary(self):
        detector = OutlierDetector()
        verdict, _ = detector.observe(
            make_sample(t=60, cpi=10.0, cpu_usage=0.25), SPEC)
        assert verdict.flagged  # exactly at the gate counts

    def test_missing_spec_skipped(self):
        detector = OutlierDetector()
        verdict, anomaly = detector.observe(make_sample(t=60, cpi=10.0), None)
        assert verdict.skipped
        assert verdict.skip_reason == "no-spec"
        assert anomaly is None
        assert detector.samples_skipped_no_spec == 1


class TestAnomalyWindow:
    def test_three_in_five_minutes_declares(self):
        detector = OutlierDetector()
        anomalies = []
        for minute in range(1, 4):
            _, anomaly = detector.observe(
                make_sample(t=60 * minute, cpi=2.0), SPEC)
            anomalies.append(anomaly)
        assert anomalies[:2] == [None, None]
        assert anomalies[2] is not None
        assert anomalies[2].violations == 3

    def test_two_flags_insufficient(self):
        detector = OutlierDetector()
        for t in (60, 120):
            _, anomaly = detector.observe(make_sample(t=t, cpi=2.0), SPEC)
        assert anomaly is None

    def test_flags_expire_outside_window(self):
        detector = OutlierDetector()
        detector.observe(make_sample(t=60, cpi=2.0), SPEC)
        detector.observe(make_sample(t=120, cpi=2.0), SPEC)
        # Third flag 300+ seconds after the first: first has expired.
        _, anomaly = detector.observe(make_sample(t=420, cpi=2.0), SPEC)
        assert anomaly is None
        assert detector.violations_for("job/0") == 2

    def test_interleaved_normal_samples_dont_reset(self):
        detector = OutlierDetector()
        detector.observe(make_sample(t=60, cpi=2.0), SPEC)
        detector.observe(make_sample(t=120, cpi=1.0), SPEC)  # normal
        detector.observe(make_sample(t=180, cpi=2.0), SPEC)
        _, anomaly = detector.observe(make_sample(t=240, cpi=2.0), SPEC)
        assert anomaly is not None

    def test_anomaly_redeclared_while_condition_persists(self):
        detector = OutlierDetector()
        declared = []
        for minute in range(1, 7):
            _, anomaly = detector.observe(
                make_sample(t=60 * minute, cpi=2.0), SPEC)
            declared.append(anomaly is not None)
        assert declared == [False, False, True, True, True, True]

    def test_tasks_tracked_independently(self):
        detector = OutlierDetector()
        for minute in range(1, 3):
            detector.observe(
                make_sample(t=60 * minute, cpi=2.0, taskname="job/0"), SPEC)
        _, anomaly = detector.observe(
            make_sample(t=180, cpi=2.0, taskname="job/1"), SPEC)
        assert anomaly is None  # job/1 has only one flag

    def test_anomaly_event_fields(self):
        detector = OutlierDetector()
        for minute in range(1, 4):
            _, anomaly = detector.observe(
                make_sample(t=60 * minute, cpi=2.5, jobname="search"), SPEC)
        assert anomaly.jobname == "search"
        assert anomaly.taskname == "search/0"
        assert anomaly.cpi == 2.5
        assert anomaly.threshold == pytest.approx(1.2)
        assert anomaly.time_seconds == 180


class TestConfigurability:
    def test_custom_sigma(self):
        detector = OutlierDetector(CpiConfig(outlier_stddevs=3.0))
        verdict, _ = detector.observe(make_sample(t=60, cpi=1.25), SPEC)
        assert not verdict.flagged  # 1.25 < 1.0 + 3*0.1

    def test_one_shot_anomaly_config(self):
        detector = OutlierDetector(CpiConfig(anomaly_violations=1))
        _, anomaly = detector.observe(make_sample(t=60, cpi=2.0), SPEC)
        assert anomaly is not None

    def test_forget_task(self):
        detector = OutlierDetector()
        detector.observe(make_sample(t=60, cpi=2.0), SPEC)
        detector.forget_task("job/0")
        assert detector.violations_for("job/0") == 0
