"""Unit tests for repro.perf.counters and repro.perf.events."""

import pytest

from repro.perf.counters import (
    CONTEXT_SWITCH_COST_SECONDS,
    CounterBank,
    CounterSet,
)
from repro.perf.events import CounterEvent


class TestCounterSet:
    def test_starts_at_zero(self):
        counters = CounterSet()
        for event in CounterEvent:
            assert counters.read(event) == 0.0

    def test_accumulates(self):
        counters = CounterSet()
        counters.add(CounterEvent.INSTRUCTIONS_RETIRED, 100.0)
        counters.add(CounterEvent.INSTRUCTIONS_RETIRED, 50.0)
        assert counters.read(CounterEvent.INSTRUCTIONS_RETIRED) == 150.0

    def test_negative_increment_rejected(self):
        counters = CounterSet()
        with pytest.raises(ValueError, match=">= 0"):
            counters.add(CounterEvent.L3_MISSES, -1.0)

    def test_snapshot_is_immutable_copy(self):
        counters = CounterSet()
        counters.add(CounterEvent.CPU_CLK_UNHALTED_REF, 10.0)
        snap = counters.snapshot()
        counters.add(CounterEvent.CPU_CLK_UNHALTED_REF, 5.0)
        assert snap[CounterEvent.CPU_CLK_UNHALTED_REF] == 10.0

    def test_delta_since(self):
        counters = CounterSet()
        counters.add(CounterEvent.CPU_CLK_UNHALTED_REF, 10.0)
        snap = counters.snapshot()
        counters.add(CounterEvent.CPU_CLK_UNHALTED_REF, 7.0)
        counters.add(CounterEvent.L3_MISSES, 3.0)
        deltas = counters.delta_since(snap)
        assert deltas[CounterEvent.CPU_CLK_UNHALTED_REF] == 7.0
        assert deltas[CounterEvent.L3_MISSES] == 3.0
        assert deltas[CounterEvent.INSTRUCTIONS_RETIRED] == 0.0

    def test_backwards_counter_detected(self):
        counters = CounterSet()
        counters.add(CounterEvent.L2_MISSES, 5.0)
        snap = counters.snapshot()
        fresh = CounterSet()
        with pytest.raises(ValueError, match="backwards"):
            fresh.delta_since(snap)

    def test_delta_with_partial_snapshot(self):
        counters = CounterSet()
        counters.add(CounterEvent.L2_MISSES, 5.0)
        deltas = counters.delta_since({})  # missing keys count from zero
        assert deltas[CounterEvent.L2_MISSES] == 5.0


class TestCounterBank:
    def test_lazy_creation(self):
        bank = CounterBank()
        assert bank.known_cgroups() == []
        bank.counters_for("job/0").add(CounterEvent.L3_MISSES, 1.0)
        assert bank.known_cgroups() == ["job/0"]

    def test_same_instance_returned(self):
        bank = CounterBank()
        assert bank.counters_for("a") is bank.counters_for("a")

    def test_drop(self):
        bank = CounterBank()
        bank.counters_for("a")
        bank.drop("a")
        bank.drop("never-existed")  # no-op
        assert bank.known_cgroups() == []

    def test_context_switch_ledger(self):
        bank = CounterBank()
        bank.record_context_switches(1000)
        assert bank.context_switches == 1000
        assert bank.overhead_seconds == pytest.approx(
            1000 * CONTEXT_SWITCH_COST_SECONDS)

    def test_overhead_fraction_matches_paper_claim(self):
        # A task switching 1000x/sec for an hour while burning 1 CPU-sec/sec:
        # 3.6M switches * 2us = 7.2s over 3600 CPU-seconds = 0.2%... the
        # paper's <0.1% holds at realistic (<500/s) switch rates.
        bank = CounterBank()
        bank.record_context_switches(500 * 3600)
        assert bank.overhead_fraction(3600.0) < 0.001

    def test_overhead_fraction_validation(self):
        bank = CounterBank()
        with pytest.raises(ValueError, match="positive"):
            bank.overhead_fraction(0.0)

    def test_negative_switches_rejected(self):
        bank = CounterBank()
        with pytest.raises(ValueError, match=">= 0"):
            bank.record_context_switches(-1)
