"""Integration tests for repro.core.pipeline (the Figure 6 loop, end to end)."""

import pytest

from repro.cluster.job import Job
from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.core.config import CpiConfig
from repro.core.pipeline import CpiPipeline
from repro.core.policy import PolicyAction
from repro.core.throttle import AdaptiveCapController
from repro.perf.sampler import SamplerConfig
from repro.records import SpecKey
from repro.testing import make_quiet_machine
from repro.workloads import AntagonistKind, make_antagonist_job_spec
from repro.workloads.services import make_service_job_spec
from tests.conftest import make_spec


def make_cluster(n_machines=3, seed=1, config=None):
    config = config or CpiConfig()
    machines = [make_quiet_machine(f"m{i}") for i in range(n_machines)]
    sim = ClusterSimulation(
        machines,
        SimConfig(seed=seed, sampler=SamplerConfig(
            config.sampling_duration, config.sampling_period)))
    pipeline = CpiPipeline(sim, config)
    return sim, pipeline


def submit_standard_mix(sim, seed=7):
    victim = Job(make_service_job_spec("frontend", num_tasks=6, seed=seed))
    antagonist = Job(make_antagonist_job_spec(
        "video", AntagonistKind.VIDEO_PROCESSING, num_tasks=2, seed=seed + 1,
        demand_scale=1.2))
    sim.scheduler.submit(victim)
    sim.scheduler.submit(antagonist)
    return victim, antagonist


class TestEndToEnd:
    def test_incident_flow_with_bootstrap_specs(self):
        sim, pipeline = make_cluster()
        submit_standard_mix(sim)
        pipeline.bootstrap_specs([make_spec(
            jobname="frontend", cpi_mean=1.05, cpi_stddev=0.08)])
        sim.run_minutes(30)
        incidents = pipeline.all_incidents()
        assert incidents
        throttles = [i for i in incidents
                     if i.decision.action is PolicyAction.THROTTLE]
        assert throttles
        assert all(i.decision.target.job.name == "video" for i in throttles)
        # Recovered follow-ups flow into forensics.
        assert len(pipeline.forensics) >= 1

    def test_spec_learning_without_bootstrap(self):
        # The pipeline must learn specs from scratch and then detect.
        config = CpiConfig(spec_refresh_period=600, min_tasks_for_spec=5,
                           min_samples_per_task=5)
        sim, pipeline = make_cluster(config=config)
        submit_standard_mix(sim)
        sim.run_minutes(25)
        key = SpecKey("frontend", "westmere-2.6")
        assert key in pipeline.aggregator.specs()
        spec = pipeline.aggregator.specs()[key]
        assert 0.8 < spec.cpi_mean < 2.5

    def test_samples_flow_upward(self):
        sim, pipeline = make_cluster()
        submit_standard_mix(sim)
        sim.run_minutes(3)
        # 8 tasks x 3 windows
        assert pipeline.total_samples == 24
        assert pipeline.aggregator.total_samples_ingested == 24

    def test_departed_task_state_cleaned(self):
        sim, pipeline = make_cluster()
        victim, _ = submit_standard_mix(sim)
        pipeline.bootstrap_specs([make_spec(
            jobname="frontend", cpi_mean=1.05, cpi_stddev=0.08)])
        sim.run_minutes(2)
        task = victim.tasks[0]
        machine = sim.machines[task.machine_name]
        agent = pipeline.agents[machine.name]
        from repro.cluster.task import TaskState
        machine.remove(task.name, TaskState.KILLED)
        # Simulate what the tick hook does on departures reported by ticks;
        # direct removal bypasses it, so call forget explicitly.
        agent.forget_task(task.name)
        assert agent.detector.violations_for(task.name) == 0


class TestIncidentRate:
    def test_rate_counts_identified_only(self):
        sim, pipeline = make_cluster()
        submit_standard_mix(sim)
        pipeline.bootstrap_specs([make_spec(
            jobname="frontend", cpi_mean=1.05, cpi_stddev=0.08)])
        sim.run_minutes(30)
        rate = pipeline.incident_rate_per_machine_day()
        assert rate > 0.0
        identified = [i for i in pipeline.all_incidents()
                      if i.decision.target is not None]
        machine_days = pipeline.machine_seconds / 86400
        assert rate == pytest.approx(len(identified) / machine_days)

    def test_zero_before_running(self):
        sim, pipeline = make_cluster()
        assert pipeline.incident_rate_per_machine_day() == 0.0


class TestSchedulerHints:
    def test_hints_installed(self):
        sim, pipeline = make_cluster()
        submit_standard_mix(sim)
        pipeline.bootstrap_specs([make_spec(
            jobname="frontend", cpi_mean=1.05, cpi_stddev=0.08)])
        sim.run_minutes(40)
        installed = pipeline.apply_scheduler_hints(min_incidents=1)
        assert installed >= 1
        assert not sim.scheduler.colocation_allowed == {}  # API intact
        # The pair must now be refused co-location.
        machine = next(iter(sim.machines.values()))
        assert ("frontend", "video") in pipeline.forensics.scheduler_hints(1)


class TestAdaptiveThrottlerWiring:
    def test_factory_used_per_agent(self):
        config = CpiConfig()
        machines = [make_quiet_machine(f"m{i}") for i in range(2)]
        sim = ClusterSimulation(machines, SimConfig(
            sampler=SamplerConfig(config.sampling_duration,
                                  config.sampling_period)))
        pipeline = CpiPipeline(
            sim, config,
            throttler_factory=lambda: AdaptiveCapController(config))
        throttlers = {id(a.throttler) for a in pipeline.agents.values()}
        assert len(throttlers) == 2
        assert all(isinstance(a.throttler, AdaptiveCapController)
                   for a in pipeline.agents.values())


class TestSampleLogging:
    def test_disabled_by_default(self):
        sim, pipeline = make_cluster()
        submit_standard_mix(sim)
        sim.run_minutes(2)
        assert pipeline.sample_log == []

    def test_log_retains_all_samples(self, tmp_path):
        config = CpiConfig()
        machines = [make_quiet_machine("m0")]
        sim = ClusterSimulation(machines, SimConfig(
            sampler=SamplerConfig(config.sampling_duration,
                                  config.sampling_period)))
        pipeline = CpiPipeline(sim, config, log_samples=True)
        submit_standard_mix(sim)
        sim.run_minutes(3)
        assert len(pipeline.sample_log) == pipeline.total_samples > 0
        # Pairs with storage: the offline-analysis workflow.
        from repro.core.storage import load_samples, save_samples
        path = tmp_path / "cpis.jsonl"
        save_samples(path, pipeline.sample_log)
        assert load_samples(path) == pipeline.sample_log
