"""Edge-case tests for pipeline actuation paths and agent internals."""

import pytest

from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.cluster.task import SchedulingClass
from repro.core.agent import MachineAgent
from repro.core.config import CpiConfig
from repro.core.pipeline import CpiPipeline
from repro.core.policy import AmeliorationPolicy, PolicyAction
from repro.perf.sampler import SamplerConfig
from repro.testing import (
    NOISY_NEIGHBOR_PROFILE,
    SENSITIVE_PROFILE,
    make_quiet_machine,
    make_scripted_job,
)
from tests.conftest import make_sample, make_spec

FAST = CpiConfig(sampling_duration=5, sampling_period=15,
                 anomaly_window=120, correlation_window=300,
                 hardcap_duration=60)


def victim_antagonist(machine):
    victim = make_scripted_job("victim", [1.0], cpu_limit=2.0, base_cpi=1.0,
                               profile=SENSITIVE_PROFILE)
    antagonist = make_scripted_job("ant", [6.0], cpu_limit=8.0,
                                   scheduling_class=SchedulingClass.BATCH,
                                   profile=NOISY_NEIGHBOR_PROFILE)
    machine.place(victim.tasks[0])
    machine.place(antagonist.tasks[0])
    return victim, antagonist


class TestMigrationActuation:
    def build(self, n_machines, migrate_after=1):
        machines = [make_quiet_machine(f"m{i}") for i in range(n_machines)]
        sim = ClusterSimulation(machines, SimConfig(
            seed=2, sampler=SamplerConfig(FAST.sampling_duration,
                                          FAST.sampling_period)))
        pipeline = CpiPipeline(sim, FAST, enable_migration=True)
        # Make escalation quick: one failed throttle -> migrate the victim.
        for agent in pipeline.agents.values():
            agent.policy = AmeliorationPolicy(
                FAST, migrate_after_failures=migrate_after)
        victim, antagonist = victim_antagonist(machines[0])
        sim.scheduler.jobs[victim.name] = victim
        sim.scheduler.jobs[antagonist.name] = antagonist
        pipeline.bootstrap_specs([make_spec(jobname="victim", cpi_mean=1.0,
                                            cpi_stddev=0.1)])
        return sim, pipeline, victim, antagonist

    def test_migration_with_nowhere_to_go_is_graceful(self):
        # One machine: MIGRATE_VICTIM decisions cannot be actuated; the
        # pipeline must swallow the PlacementError and keep running.
        sim, pipeline, victim, _ = self.build(1)
        # Force failed throttles: antagonist so strong the victim never
        # recovers below threshold? Easiest: make every followup 'fail' by
        # keeping a second uncapped antagonist around.
        second = make_scripted_job("ant2", [6.0], cpu_limit=8.0,
                                   scheduling_class=SchedulingClass.BATCH,
                                   profile=NOISY_NEIGHBOR_PROFILE)
        sim.machines["m0"].place(second.tasks[0])
        sim.run_minutes(20)
        # The victim is still on the only machine, still running.
        assert victim.tasks[0].machine_name == "m0"

    def test_migration_moves_victim_when_possible(self):
        sim, pipeline, victim, _ = self.build(2)
        second = make_scripted_job("ant2", [6.0], cpu_limit=8.0,
                                   scheduling_class=SchedulingClass.BATCH,
                                   profile=NOISY_NEIGHBOR_PROFILE)
        sim.machines["m0"].place(second.tasks[0])
        sim.scheduler.jobs["ant2"] = second
        sim.run_minutes(25)
        migrations = [i for i in pipeline.all_incidents()
                      if i.decision.action is PolicyAction.MIGRATE_VICTIM]
        if migrations:  # escalation reached
            assert victim.tasks[0].machine_name == "m1"


class TestAgentInternals:
    def test_recent_cpi_requires_samples_after_since(self):
        machine = make_quiet_machine()
        agent = MachineAgent(machine, FAST)
        agent.ingest_samples(60, [make_sample(jobname="j", taskname="j/0",
                                              t=60, cpi=1.5)])
        assert agent._recent_cpi("j/0", since=0) == pytest.approx(1.5)
        assert agent._recent_cpi("j/0", since=60) is None
        assert agent._recent_cpi("ghost/0", since=0) is None

    def test_victim_series_respects_window(self):
        machine = make_quiet_machine()
        agent = MachineAgent(machine, FAST)  # correlation_window = 300
        for minute, cpi in ((1, 1.0), (4, 2.0), (9, 3.0)):
            agent.ingest_samples(minute * 60, [make_sample(
                jobname="j", taskname="j/0", t=minute * 60, cpi=cpi)])
        timestamps, cpis = agent._victim_series("j/0", now=9 * 60)
        # Only samples within the last 300 s of t=540 qualify: t=240? no
        # (540-300=240, strict >): t=240 excluded, t=540 included.
        assert timestamps == [540]
        assert cpis == [3.0]

    def test_no_suspects_means_no_incident(self):
        # A lone task that goes anomalous (no co-tenants) raises nothing.
        machine = make_quiet_machine()
        from repro.records import SpecKey
        agent = MachineAgent(machine, FAST.with_overrides(
            anomaly_violations=1))
        job = make_scripted_job("only", [1.0], cpu_limit=2.0)
        machine.place(job.tasks[0])
        agent.update_specs({SpecKey("only", machine.platform.name):
                            make_spec(jobname="only", cpi_mean=0.5,
                                      cpi_stddev=0.01)})
        incidents = agent.ingest_samples(60, [make_sample(
            jobname="only", taskname="only/0", t=60, cpi=5.0)])
        assert incidents == []
        assert agent.anomalies_seen == 1
