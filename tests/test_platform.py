"""Unit tests for repro.cluster.platform."""

import dataclasses

import pytest

from repro.cluster.platform import PLATFORM_CATALOG, Platform, get_platform


class TestPlatform:
    def test_catalog_has_multiple_platforms(self):
        # Figure 4 needs at least two CPU types.
        assert len(PLATFORM_CATALOG) >= 2

    def test_get_platform_roundtrip(self):
        for name in PLATFORM_CATALOG:
            assert get_platform(name).name == name

    def test_unknown_platform_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known platforms"):
            get_platform("pentium-90")

    def test_cycles_per_cpu_second(self):
        p = get_platform("westmere-2.6")
        assert p.cycles_per_cpu_second == pytest.approx(2.6e9)

    def test_platforms_differ_in_cpi_scale(self):
        # Same workload must exhibit measurably different CPIs per platform.
        scales = {p.cpi_scale for p in PLATFORM_CATALOG.values()}
        assert len(scales) == len(PLATFORM_CATALOG)

    def test_immutable(self):
        p = get_platform("westmere-2.6")
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.clock_ghz = 1.0

    @pytest.mark.parametrize("field,value", [
        ("clock_ghz", 0.0),
        ("num_cores", 0),
        ("llc_mib", -1.0),
        ("membw_gbps", 0.0),
        ("cpi_scale", 0.0),
    ])
    def test_validation(self, field, value):
        kwargs = dict(name="x", clock_ghz=2.0, num_cores=8,
                      llc_mib=8.0, membw_gbps=20.0, cpi_scale=1.0)
        kwargs[field] = value
        with pytest.raises(ValueError, match=field):
            Platform(**kwargs)
