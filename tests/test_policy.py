"""Unit tests for repro.core.policy (Section 5's amelioration rules)."""

import pytest

from repro.cluster.task import SchedulingClass
from repro.core.config import CpiConfig
from repro.core.correlation import SuspectScore
from repro.core.policy import AmeliorationPolicy, PolicyAction
from repro.testing import make_scripted_job


def task_of(name, scheduling_class=SchedulingClass.LATENCY_SENSITIVE,
            protection_eligible=None):
    job = make_scripted_job(name, [1.0], scheduling_class=scheduling_class)
    if protection_eligible is not None:
        object.__setattr__(job.spec, "protection_eligible", protection_eligible)
    return job.tasks[0]


def scored(task, correlation):
    return (SuspectScore(task.name, task.job.name, correlation), task)


class TestThrottleDecision:
    def test_batch_suspect_above_threshold_throttled(self):
        policy = AmeliorationPolicy()
        victim = task_of("victim")
        antagonist = task_of("ant", SchedulingClass.BATCH)
        decision = policy.decide(victim, [scored(antagonist, 0.5)])
        assert decision.action is PolicyAction.THROTTLE
        assert decision.target is antagonist
        assert decision.score.correlation == 0.5

    def test_below_threshold_no_action(self):
        # Case 3: best correlation 0.07 -> "CPI2 took no action".
        policy = AmeliorationPolicy()
        victim = task_of("victim")
        antagonist = task_of("ant", SchedulingClass.BATCH)
        decision = policy.decide(victim, [scored(antagonist, 0.07)])
        assert decision.action is PolicyAction.NO_ACTION
        assert "0.07" in decision.reason

    def test_threshold_is_inclusive(self):
        policy = AmeliorationPolicy()
        victim = task_of("victim")
        antagonist = task_of("ant", SchedulingClass.BATCH)
        decision = policy.decide(victim, [scored(antagonist, 0.35)])
        assert decision.action is PolicyAction.THROTTLE

    def test_ls_suspects_never_throttled(self):
        # Case 1: four of the top five suspects were latency-sensitive; the
        # batch job was picked even at lower correlation than an LS peer.
        policy = AmeliorationPolicy()
        victim = task_of("victim")
        ls_peer = task_of("ls-peer")
        batch = task_of("batch", SchedulingClass.BATCH)
        decision = policy.decide(
            victim, [scored(ls_peer, 0.66), scored(batch, 0.36)])
        assert decision.action is PolicyAction.THROTTLE
        assert decision.target is batch

    def test_all_ls_suspects_reports_only(self):
        policy = AmeliorationPolicy()
        victim = task_of("victim")
        decision = policy.decide(victim, [scored(task_of("a"), 0.6),
                                          scored(task_of("b"), 0.5)])
        assert decision.action is PolicyAction.REPORT_ONLY

    def test_best_effort_suspect_eligible(self):
        policy = AmeliorationPolicy()
        victim = task_of("victim")
        be = task_of("be", SchedulingClass.BEST_EFFORT)
        decision = policy.decide(victim, [scored(be, 0.4)])
        assert decision.action is PolicyAction.THROTTLE

    def test_ineligible_victim_reports_only(self):
        policy = AmeliorationPolicy()
        victim = task_of("victim", protection_eligible=False)
        batch = task_of("b", SchedulingClass.BATCH)
        decision = policy.decide(victim, [scored(batch, 0.5)])
        assert decision.action is PolicyAction.REPORT_ONLY
        assert "not protection-eligible" in decision.reason

    def test_auto_throttle_disabled(self):
        policy = AmeliorationPolicy(CpiConfig(auto_throttle=False))
        victim = task_of("victim")
        batch = task_of("b", SchedulingClass.BATCH)
        decision = policy.decide(victim, [scored(batch, 0.5)])
        assert decision.action is PolicyAction.REPORT_ONLY
        assert decision.target is batch  # still named, for the operators

    def test_no_suspects_no_action(self):
        policy = AmeliorationPolicy()
        decision = policy.decide(task_of("victim"), [])
        assert decision.action is PolicyAction.NO_ACTION


class TestReanalysisAndEscalation:
    def test_collapsed_correlation_not_repicked(self):
        # "Since throttling the antagonist's CPU reduces its correlation ...
        # it is not likely to get picked in a later round": a currently
        # capped suspect arrives with a collapsed score and loses naturally.
        policy = AmeliorationPolicy()
        victim = task_of("victim")
        capped = task_of("a1", SchedulingClass.BATCH)
        second = task_of("a2", SchedulingClass.BATCH)
        policy.record_throttle(victim, capped)
        decision = policy.decide(
            victim, [scored(second, 0.4), scored(capped, 0.02)])
        assert decision.target is second

    def test_reoffending_antagonist_rethrottled(self):
        # Case 4: the same antagonist may be throttled again once its cap
        # lapsed and its correlation recovered.
        policy = AmeliorationPolicy()
        victim = task_of("victim")
        antagonist = task_of("a1", SchedulingClass.BATCH)
        policy.record_throttle(victim, antagonist)
        policy.record_outcome(victim, recovered=False)
        decision = policy.decide(victim, [scored(antagonist, 0.55)])
        assert decision.action is PolicyAction.THROTTLE
        assert decision.target is antagonist

    def test_migrate_after_repeated_failures(self):
        # Case 4's lesson: modest relief twice -> move the victim.
        policy = AmeliorationPolicy(migrate_after_failures=2)
        victim = task_of("victim")
        policy.record_outcome(victim, recovered=False)
        policy.record_outcome(victim, recovered=False)
        batch = task_of("b", SchedulingClass.BATCH)
        decision = policy.decide(victim, [scored(batch, 0.9)])
        assert decision.action is PolicyAction.MIGRATE_VICTIM

    def test_recovery_resets_failure_count(self):
        policy = AmeliorationPolicy(migrate_after_failures=2)
        victim = task_of("victim")
        policy.record_outcome(victim, recovered=False)
        policy.record_outcome(victim, recovered=True)
        policy.record_outcome(victim, recovered=False)
        batch = task_of("b", SchedulingClass.BATCH)
        decision = policy.decide(victim, [scored(batch, 0.9)])
        assert decision.action is PolicyAction.THROTTLE

    def test_recovery_keeps_policy_open_to_rethrottle(self):
        policy = AmeliorationPolicy()
        victim = task_of("victim")
        antagonist = task_of("a", SchedulingClass.BATCH)
        policy.record_throttle(victim, antagonist)
        policy.record_outcome(victim, recovered=True)
        decision = policy.decide(victim, [scored(antagonist, 0.6)])
        assert decision.action is PolicyAction.THROTTLE  # eligible again

    def test_kill_persistent_offender(self):
        policy = AmeliorationPolicy(kill_after_offences=2)
        victim_a, victim_b = task_of("va"), task_of("vb")
        offender = task_of("off", SchedulingClass.BATCH)
        policy.record_throttle(victim_a, offender)
        policy.record_throttle(victim_b, offender)
        fresh_victim = task_of("vc")
        decision = policy.decide(fresh_victim, [scored(offender, 0.5)])
        assert decision.action is PolicyAction.KILL_ANTAGONIST
        assert decision.target is offender
        assert policy.offence_count(offender.name) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="migrate_after_failures"):
            AmeliorationPolicy(migrate_after_failures=0)
        with pytest.raises(ValueError, match="kill_after_offences"):
            AmeliorationPolicy(kill_after_offences=0)
