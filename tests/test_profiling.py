"""Unit tests for the perf toolkit: stage timers, cProfile wrapper, the
sampler fast-forward, cached iteration order, matrix-backed counters, and
the fused-fleet eligibility/fallback rules."""

import numpy as np
import pytest

from repro.cluster.fused import FusedFleet, fused_eligible
from repro.cluster.machine import Machine
from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.perf.counters import EVENT_ORDER, CounterBank
from repro.perf.events import CounterEvent
from repro.perf.profiling import StageTimers, profile_call
from repro.perf.sampler import CpiSampler, SamplerConfig
from repro import get_platform
from repro.testing import make_quiet_machine, make_scripted_job


class TestStageTimers:
    def test_stage_accumulates_and_counts(self):
        timers = StageTimers()
        with timers.stage("a"):
            pass
        with timers.stage("a"):
            pass
        report = timers.report()
        assert report["a"]["calls"] == 2
        assert report["a"]["seconds"] >= 0.0
        assert timers.total_seconds() == timers.seconds("a")

    def test_add_folds_external_time(self):
        timers = StageTimers()
        timers.add("x", 1.5)
        timers.add("x", 0.5, calls=3)
        assert timers.seconds("x") == 2.0
        assert timers.report()["x"]["calls"] == 4

    def test_report_sorted_by_descending_time(self):
        timers = StageTimers()
        timers.add("small", 1.0)
        timers.add("big", 5.0)
        assert list(timers.report()) == ["big", "small"]

    def test_render_and_reset(self):
        timers = StageTimers()
        assert timers.render() == "(no stages timed)"
        timers.add("stage", 2.0)
        assert "stage" in timers.render()
        timers.reset()
        assert timers.seconds("stage") == 0.0

    def test_validation(self):
        timers = StageTimers()
        with pytest.raises(ValueError, match="seconds"):
            timers.add("x", -1.0)
        with pytest.raises(ValueError, match="calls"):
            timers.add("x", 1.0, calls=-1)


class TestProfileCall:
    def test_returns_result_and_stats(self):
        result, stats = profile_call(lambda: sum(range(100)))
        assert result == 4950
        assert "function calls" in stats

    def test_dumps_stats_file(self, tmp_path):
        path = tmp_path / "run.pstats"
        _, _ = profile_call(lambda: None, stats_path=str(path))
        assert path.exists() and path.stat().st_size > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="limit"):
            profile_call(lambda: None, limit=0)


class TestSamplerFastForward:
    def test_wants_tick_skips_only_noop_seconds(self):
        """Skipping wants_tick==False seconds must not change the stream."""
        def build():
            machine = make_quiet_machine()
            job = make_scripted_job("j", [1.0, 2.0], cpu_limit=4.0)
            machine.place(job.tasks[0])
            return machine, CpiSampler(machine, SamplerConfig())

        m1, every_second = build()
        m2, fast_forward = build()
        full, skipped = [], []
        for t in range(200):
            m1.tick(t)
            m2.tick(t)
            full.extend(every_second.tick(t))
            if fast_forward.wants_tick(t):
                skipped.extend(fast_forward.tick(t))
        assert full  # windows actually closed
        assert ([(s.timestamp, s.cpi, s.cpu_usage) for s in full]
                == [(s.timestamp, s.cpi, s.cpu_usage) for s in skipped])


def _sim(num_machines, engine="vector"):
    machines = [Machine(f"m{i}", get_platform("westmere-2.6"),
                        cpi_noise_sigma=0.0, tick_engine=engine)
                for i in range(num_machines)]
    return ClusterSimulation(machines, SimConfig(seed=1))


class TestCachedIterationOrder:
    def test_order_cached_after_first_step(self):
        sim = _sim(2)
        sim.step()
        assert sim._machine_order is not None
        cached = sim._machine_order
        sim.step()
        assert sim._machine_order is cached

    def test_invalidate_drops_cache_and_fleet(self):
        sim = _sim(2)
        sim.step()
        sim.invalidate_iteration_order()
        assert sim._machine_order is None
        assert sim._fleet is None

    def test_added_machine_picked_up_after_invalidate(self):
        sim = _sim(2)
        sim.step()
        extra = Machine("m9", get_platform("westmere-2.6"))
        extra.rng = np.random.default_rng(0)
        sim.machines["m9"] = extra
        sim.samplers["m9"] = CpiSampler(extra, sim.config.sampler)
        sim.invalidate_iteration_order()
        results = sim.step()
        assert set(results) == {"m0", "m1", "m9"}

    def test_length_change_detected_without_invalidate(self):
        sim = _sim(2)
        sim.step()
        extra = Machine("m9", get_platform("westmere-2.6"))
        extra.rng = np.random.default_rng(0)
        sim.machines["m9"] = extra
        sim.samplers["m9"] = CpiSampler(extra, sim.config.sampler)
        results = sim.step()
        assert "m9" in results


class TestMatrixCounters:
    def test_matrix_view_shares_storage(self):
        bank = CounterBank()
        bank.counters_for("a").add(CounterEvent.CPU_CLK_UNHALTED_REF, 10.0)
        matrix = bank.matrix_view(["a", "b"])
        assert matrix.shape == (2, len(EVENT_ORDER))
        events = np.ones_like(matrix)
        bank.burn_matrix(matrix, events)
        assert bank.counters_for("a").read(CounterEvent.CPU_CLK_UNHALTED_REF) == 11.0
        assert bank.counters_for("b").read(
            CounterEvent.INSTRUCTIONS_RETIRED) == 1.0

    def test_burn_matrix_validation(self):
        bank = CounterBank()
        matrix = bank.matrix_view(["a"])
        bad = np.ones((1, len(EVENT_ORDER)))
        with pytest.raises(ValueError, match="shape"):
            bank.burn_matrix(matrix, np.ones((2, len(EVENT_ORDER))))
        for poison in (-1.0, float("nan"), float("inf")):
            events = bad.copy()
            events[0, 0] = poison
            with pytest.raises(ValueError):
                bank.burn_matrix(matrix, events)


class TestFusedEligibility:
    def test_fresh_vector_machine_is_eligible(self):
        assert fused_eligible(
            Machine("m", get_platform("westmere-2.6"),
                    tick_engine="vector"))

    def test_legacy_engine_is_not(self):
        assert not fused_eligible(
            Machine("m", get_platform("westmere-2.6"),
                    tick_engine="legacy"))

    def test_instance_patched_tick_is_not(self):
        machine = Machine("m", get_platform("westmere-2.6"),
                          tick_engine="vector")
        machine.tick = lambda t: None
        assert not fused_eligible(machine)

    def test_subclass_override_is_not(self):
        class Custom(Machine):
            def _tick_vector(self, t):
                return super()._tick_vector(t)

        assert not fused_eligible(
            Custom("m", get_platform("westmere-2.6"), tick_engine="vector"))

    def test_build_rejects_mixed_fleets(self):
        ok = Machine("a", get_platform("westmere-2.6"), tick_engine="vector")
        bad = Machine("b", get_platform("westmere-2.6"),
                      tick_engine="legacy")
        for m in (ok, bad):
            m.rng = np.random.default_rng(0)
        assert FusedFleet.build([("a", ok), ("b", bad)]) is None

    def test_simulation_falls_back_for_legacy_fleet(self):
        sim = _sim(2, engine="legacy")
        results = sim.step()
        assert sim._fleet is None
        assert set(results) == {"m0", "m1"}

    def test_simulation_fuses_vector_fleet(self):
        sim = _sim(2, engine="vector")
        results = sim.step()
        assert sim._fleet is not None
        assert set(results) == {"m0", "m1"}

    def test_default_engine_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TICK_ENGINE", "legacy")
        assert Machine("m", get_platform("westmere-2.6")).tick_engine == \
            "legacy"
        monkeypatch.delenv("REPRO_TICK_ENGINE")
        assert Machine("m", get_platform("westmere-2.6")).tick_engine == \
            "vector"
