"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.stats import Ecdf, pearson_correlation, rolling_mean
from repro.cluster.cgroup import Cgroup
from repro.core.aggregator import CpiAggregator
from repro.core.config import CpiConfig
from repro.core.correlation import antagonist_correlation, rank_suspects
from repro.records import CpiSample
from tests.conftest import make_sample

positive_floats = st.floats(min_value=1e-3, max_value=1e3,
                            allow_nan=False, allow_infinity=False)
usage_floats = st.floats(min_value=0.0, max_value=100.0,
                         allow_nan=False, allow_infinity=False)


class TestCorrelationProperties:
    @given(
        cpis=st.lists(positive_floats, min_size=1, max_size=50),
        usages=st.lists(usage_floats, min_size=1, max_size=50),
        threshold=positive_floats,
    )
    def test_score_always_in_unit_interval(self, cpis, usages, threshold):
        n = min(len(cpis), len(usages))
        score = antagonist_correlation(cpis[:n], usages[:n], threshold)
        assert -1.0 <= score <= 1.0

    @given(
        cpis=st.lists(positive_floats, min_size=2, max_size=30),
        usages=st.lists(usage_floats, min_size=2, max_size=30),
        threshold=positive_floats,
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_scale_invariance_in_usage(self, cpis, usages, threshold, scale):
        n = min(len(cpis), len(usages))
        cpis, usages = cpis[:n], usages[:n]
        assume(sum(usages) > 0)
        s1 = antagonist_correlation(cpis, usages, threshold)
        s2 = antagonist_correlation(cpis, [u * scale for u in usages], threshold)
        assert math.isclose(s1, s2, rel_tol=1e-9, abs_tol=1e-12)

    @given(
        cpis=st.lists(st.floats(min_value=0.0, max_value=1e3,
                                allow_nan=False), min_size=1, max_size=30),
        threshold=positive_floats,
    )
    def test_all_cpi_above_threshold_nonnegative_score(self, cpis, threshold):
        cpis = [c + threshold for c in cpis]  # strictly >= threshold
        usages = [1.0] * len(cpis)
        score = antagonist_correlation(cpis, usages, threshold)
        assert score >= 0.0

    @given(st.data())
    def test_ranking_is_sorted_descending(self, data):
        n = data.draw(st.integers(min_value=2, max_value=10))
        cpis = data.draw(st.lists(positive_floats, min_size=n, max_size=n))
        suspects = {}
        for i in range(data.draw(st.integers(min_value=1, max_value=6))):
            usages = data.draw(st.lists(usage_floats, min_size=n, max_size=n))
            suspects[f"task{i}"] = (f"job{i}", usages)
        ranked = rank_suspects(cpis, 1.0, suspects)
        correlations = [s.correlation for s in ranked]
        assert correlations == sorted(correlations, reverse=True)
        assert len(ranked) == len(suspects)


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=100))
    def test_pearson_in_unit_interval(self, xs):
        ys = xs[::-1]
        r = pearson_correlation(xs, ys)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=100),
           st.integers(min_value=1, max_value=20))
    def test_rolling_mean_bounded_by_extremes(self, values, window):
        out = rolling_mean(values, window)
        assert len(out) == len(values)
        lo, hi = min(values), max(values)
        assert all(lo - 1e-9 <= v <= hi + 1e-9 for v in out)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_ecdf_monotone_and_bounded(self, samples):
        ecdf = Ecdf(samples)
        points = sorted(samples)
        values = [ecdf(x) for x in points]
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)
        assert ecdf(max(samples)) == 1.0


class TestCgroupProperties:
    @given(st.lists(usage_floats, min_size=1, max_size=100))
    def test_total_equals_sum_of_charges(self, usages):
        cg = Cgroup("j/0", cpu_limit=1000.0)
        for t, u in enumerate(usages):
            cg.charge(t, u)
        assert math.isclose(cg.total_cpu_seconds, sum(usages), rel_tol=1e-9,
                            abs_tol=1e-9)

    @given(demand=usage_floats, limit=positive_floats,
           quota=st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_allowance_never_exceeds_any_constraint(self, demand, limit, quota):
        cg = Cgroup("j/0", cpu_limit=limit)
        cg.apply_cap(quota, now=0, duration=10)
        allowed = cg.allowed_usage(demand, t=0)
        assert allowed <= demand + 1e-12
        assert allowed <= limit + 1e-12
        assert allowed <= quota + 1e-12
        assert allowed >= 0.0


class TestAggregatorProperties:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(positive_floats, usage_floats),
                    min_size=6, max_size=80))
    def test_spec_mean_within_sample_range(self, pairs):
        config = CpiConfig(min_tasks_for_spec=1, min_samples_per_task=1)
        agg = CpiAggregator(config)
        cpis = []
        for i, (cpi, usage) in enumerate(pairs):
            agg.ingest(make_sample(t=60 * i, cpi=cpi, cpu_usage=usage,
                                   taskname=f"job/{i % 3}"))
            cpis.append(cpi)
        specs = agg.recompute(0)
        spec = next(iter(specs.values()))
        assert min(cpis) - 1e-9 <= spec.cpi_mean <= max(cpis) + 1e-9
        assert spec.cpi_stddev >= 0.0
        assert spec.num_samples == len(pairs)

    @settings(max_examples=30)
    @given(st.lists(positive_floats, min_size=6, max_size=40),
           st.lists(positive_floats, min_size=6, max_size=40))
    def test_blended_mean_between_old_and_new(self, old_cpis, new_cpis):
        config = CpiConfig(min_tasks_for_spec=1, min_samples_per_task=1)
        agg = CpiAggregator(config)
        for i, cpi in enumerate(old_cpis):
            agg.ingest(make_sample(t=60 * i, cpi=cpi, taskname="job/0"))
        old_spec = agg.recompute(0)[next(iter(agg.specs()))]
        for i, cpi in enumerate(new_cpis):
            agg.ingest(make_sample(t=86400 + 60 * i, cpi=cpi,
                                   taskname="job/0"))
        new_spec = agg.recompute(86400)[next(iter(agg.specs()))]
        import numpy as np
        fresh_mean = float(np.mean(new_cpis))
        lo = min(old_spec.cpi_mean, fresh_mean) - 1e-9
        hi = max(old_spec.cpi_mean, fresh_mean) + 1e-9
        assert lo <= new_spec.cpi_mean <= hi


class TestSampleProperties:
    @given(cpi=usage_floats, usage=usage_floats,
           t=st.integers(min_value=0, max_value=10**7))
    def test_sample_roundtrip(self, cpi, usage, t):
        sample = CpiSample("j", "p", t * 1_000_000, usage, cpi, "j/0")
        assert sample.timestamp_seconds == t
        assert sample.key() == ("j", "p")
