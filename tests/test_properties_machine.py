"""Property-based tests on machine allocation and sampling invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.task import SchedulingClass
from repro.perf.events import CounterEvent
from repro.perf.sampler import CpiSampler, SamplerConfig
from repro.testing import (
    NOISY_NEIGHBOR_PROFILE,
    SENSITIVE_PROFILE,
    make_quiet_machine,
    make_scripted_job,
)

demand_values = st.floats(min_value=0.0, max_value=30.0, allow_nan=False)
scheduling_classes = st.sampled_from(list(SchedulingClass))


def build_machine(task_specs):
    """task_specs: list of (demand, scheduling_class, cpu_limit)."""
    machine = make_quiet_machine()
    for i, (demand, scheduling_class, limit) in enumerate(task_specs):
        job = make_scripted_job(f"j{i}", [demand], cpu_limit=limit,
                                scheduling_class=scheduling_class)
        machine.place(job.tasks[0])
    return machine


class TestAllocationInvariants:
    @settings(max_examples=60)
    @given(st.lists(
        st.tuples(demand_values, scheduling_classes,
                  st.floats(min_value=0.1, max_value=30.0)),
        min_size=1, max_size=12))
    def test_grants_bounded(self, task_specs):
        machine = build_machine(task_specs)
        result = machine.tick(0)
        total = sum(result.grants.values())
        # Never over capacity.
        assert total <= machine.cpu_capacity + 1e-9
        for i, (demand, _cls, limit) in enumerate(task_specs):
            grant = result.grants[f"j{i}/0"]
            # Never more than asked, never more than the cgroup allows.
            assert grant <= demand + 1e-9
            assert grant <= limit + 1e-9
            assert grant >= 0.0

    @settings(max_examples=60)
    @given(st.lists(
        st.tuples(demand_values, scheduling_classes,
                  st.floats(min_value=0.1, max_value=30.0)),
        min_size=2, max_size=12))
    def test_ls_tier_served_before_batch(self, task_specs):
        machine = build_machine(task_specs)
        result = machine.tick(0)
        ls_short = any(
            result.grants[f"j{i}/0"]
            < min(d, lim) - 1e-9
            for i, (d, cls, lim) in enumerate(task_specs)
            if cls is SchedulingClass.LATENCY_SENSITIVE)
        batch_got_cpu = any(
            result.grants[f"j{i}/0"] > 1e-9
            for i, (_d, cls, _lim) in enumerate(task_specs)
            if cls is not SchedulingClass.LATENCY_SENSITIVE)
        # If any LS task was short-changed, the LS tier alone must have
        # saturated the machine; batch may only be running on leftovers.
        if ls_short and batch_got_cpu:
            ls_total = sum(
                result.grants[f"j{i}/0"]
                for i, (_d, cls, _l) in enumerate(task_specs)
                if cls is SchedulingClass.LATENCY_SENSITIVE)
            assert ls_total >= machine.cpu_capacity - 1e-6

    @settings(max_examples=40)
    @given(st.lists(st.tuples(demand_values, scheduling_classes,
                              st.floats(min_value=0.1, max_value=30.0)),
                    min_size=1, max_size=8))
    def test_usage_charged_matches_grant(self, task_specs):
        machine = build_machine(task_specs)
        result = machine.tick(0)
        for i in range(len(task_specs)):
            task = machine.get_task(f"j{i}/0")
            assert math.isclose(task.cgroup.last_usage(),
                                result.grants[f"j{i}/0"], abs_tol=1e-12)


class TestCounterInvariants:
    @settings(max_examples=30)
    @given(demand=st.floats(min_value=0.05, max_value=8.0),
           base_cpi=st.floats(min_value=0.3, max_value=5.0),
           ticks=st.integers(min_value=1, max_value=30))
    def test_cpi_identity_holds(self, demand, base_cpi, ticks):
        """cycles / instructions must reproduce the effective CPI exactly."""
        machine = make_quiet_machine()
        job = make_scripted_job("j", [demand], cpu_limit=10.0,
                                base_cpi=base_cpi)
        machine.place(job.tasks[0])
        cpis = [machine.tick(t).cpis["j/0"] for t in range(ticks)]
        counters = machine.counters.counters_for("j/0")
        cycles = counters.read(CounterEvent.CPU_CLK_UNHALTED_REF)
        instructions = counters.read(CounterEvent.INSTRUCTIONS_RETIRED)
        # Constant demand and no noise -> constant CPI; the counter ratio
        # must equal it.
        assert math.isclose(cycles / instructions, cpis[0], rel_tol=1e-9)

    @settings(max_examples=20)
    @given(duration=st.integers(min_value=1, max_value=20),
           period_extra=st.integers(min_value=0, max_value=40),
           demand=st.floats(min_value=0.3, max_value=4.0))
    def test_sampler_usage_conservation(self, duration, period_extra, demand):
        """A sample's cpu_usage equals the mean charged usage in its window."""
        machine = make_quiet_machine()
        job = make_scripted_job("j", [demand], cpu_limit=8.0)
        machine.place(job.tasks[0])
        sampler = CpiSampler(machine, SamplerConfig(
            duration_seconds=duration,
            period_seconds=duration + period_extra))
        collected = []
        for t in range(duration + period_extra + 2):
            machine.tick(t)
            collected.extend(sampler.tick(t))
        assert collected
        assert math.isclose(collected[0].cpu_usage, demand, rel_tol=1e-9)


class TestInterferenceInvariants:
    @settings(max_examples=40)
    @given(victim_demand=st.floats(min_value=0.3, max_value=2.0),
           antagonist_demand=st.floats(min_value=0.0, max_value=10.0))
    def test_more_antagonist_never_helps_victim(self, victim_demand,
                                                antagonist_demand):
        def victim_cpi(extra):
            machine = make_quiet_machine()
            victim = make_scripted_job("v", [victim_demand], cpu_limit=3.0,
                                       profile=SENSITIVE_PROFILE)
            machine.place(victim.tasks[0])
            antagonist = make_scripted_job(
                "a", [extra], cpu_limit=12.0,
                scheduling_class=SchedulingClass.BATCH,
                profile=NOISY_NEIGHBOR_PROFILE)
            machine.place(antagonist.tasks[0])
            return machine.tick(0).cpis["v/0"]

        assert (victim_cpi(antagonist_demand)
                <= victim_cpi(antagonist_demand + 1.0) + 1e-9)
