"""Property-based tests for the cluster scheduler under random job streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.scheduler import ClusterScheduler, PlacementError
from repro.cluster.task import SchedulingClass, TaskState
from repro.testing import make_quiet_machine, make_scripted_job

job_descriptions = st.tuples(
    st.sampled_from(list(SchedulingClass)),
    st.integers(min_value=1, max_value=4),          # tasks
    st.floats(min_value=0.5, max_value=12.0),       # cpu limit
)


def submit_stream(scheduler, stream):
    jobs = []
    for i, (scheduling_class, tasks, limit) in enumerate(stream):
        job = make_scripted_job(f"j{i}", [1.0], num_tasks=tasks,
                                cpu_limit=limit,
                                scheduling_class=scheduling_class)
        try:
            scheduler.submit(job)
        except PlacementError:
            pass  # an LS job that fits nowhere; its earlier tasks may run
        jobs.append(job)
    return jobs


class TestSchedulerInvariants:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(job_descriptions, min_size=1, max_size=20),
           st.integers(min_value=1, max_value=4))
    def test_reservation_caps_hold(self, stream, n_machines):
        machines = [make_quiet_machine(f"m{i}") for i in range(n_machines)]
        scheduler = ClusterScheduler(machines, batch_overcommit=1.5,
                                     best_effort_overcommit=2.5)
        submit_stream(scheduler, stream)
        for machine in machines:
            ls = machine.reserved_cpu(SchedulingClass.LATENCY_SENSITIVE)
            assert ls <= machine.cpu_capacity + 1e-9
            assert (machine.reserved_cpu()
                    <= machine.cpu_capacity * 2.5 + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(job_descriptions, min_size=1, max_size=20))
    def test_task_states_consistent(self, stream):
        machines = [make_quiet_machine(f"m{i}") for i in range(2)]
        scheduler = ClusterScheduler(machines)
        jobs = submit_stream(scheduler, stream)
        placed_names = {t.name for m in machines for t in m.resident_tasks()}
        for job in jobs:
            for task in job:
                if task.state is TaskState.RUNNING:
                    assert task.name in placed_names
                    assert task.machine_name in scheduler.machines
                else:
                    assert task.name not in placed_names
                    assert task.machine_name is None

    @settings(max_examples=30, deadline=None)
    @given(st.lists(job_descriptions, min_size=1, max_size=15),
           st.data())
    def test_anti_affinity_never_violated(self, stream, data):
        machines = [make_quiet_machine(f"m{i}") for i in range(3)]
        scheduler = ClusterScheduler(machines)
        jobs = submit_stream(scheduler, stream)
        if len(jobs) < 2:
            return
        a = data.draw(st.integers(min_value=0, max_value=len(jobs) - 1))
        b = data.draw(st.integers(min_value=0, max_value=len(jobs) - 1))
        if a == b:
            return
        scheduler.avoid_colocation(jobs[a].name, jobs[b].name)
        # Future placements must respect the pair.
        scheduler.reschedule_pending()
        extra = make_scripted_job(jobs[a].name + "x", [1.0], cpu_limit=1.0,
                                  scheduling_class=SchedulingClass.BATCH)
        # (a fresh job is unaffected; only the named pair binds)
        scheduler.submit(extra)
        for machine in machines:
            resident = {t.job.name for t in machine.resident_tasks()}
            # Pairs placed BEFORE the rule may coexist; new placements since
            # reschedule_pending may not introduce the combination afresh.
            # We check the rule's own accounting instead of history:
            assert scheduler.colocation_allowed(machine, "unrelated-job")

    @settings(max_examples=30, deadline=None)
    @given(st.lists(job_descriptions, min_size=2, max_size=15))
    def test_reschedule_idempotent_when_full(self, stream):
        machines = [make_quiet_machine("m0")]
        scheduler = ClusterScheduler(machines)
        submit_stream(scheduler, stream)
        first = scheduler.reschedule_pending()
        second = scheduler.reschedule_pending()
        # A second immediate pass can never place more than the first.
        assert second <= first
