"""Unit tests for the CPI2 wire records."""

import pytest

from repro.records import CpiSample, CpiSpec, SpecKey
from tests.conftest import make_sample, make_spec


class TestCpiSample:
    def test_key(self):
        sample = make_sample(jobname="search", platforminfo="westmere-2.6")
        assert sample.key() == SpecKey("search", "westmere-2.6")

    def test_timestamp_units(self):
        sample = make_sample(t=90)
        assert sample.timestamp == 90_000_000
        assert sample.timestamp_seconds == pytest.approx(90.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="cpu_usage"):
            CpiSample("j", "p", 0, cpu_usage=-0.1, cpi=1.0)
        with pytest.raises(ValueError, match="cpi"):
            CpiSample("j", "p", 0, cpu_usage=0.1, cpi=-1.0)

    def test_frozen(self):
        sample = make_sample()
        with pytest.raises(Exception):
            sample.cpi = 2.0


class TestCpiSpec:
    def test_key(self):
        spec = make_spec(jobname="search")
        assert spec.key().jobname == "search"

    def test_outlier_threshold_default_two_sigma(self):
        spec = make_spec(cpi_mean=1.8, cpi_stddev=0.16)
        assert spec.outlier_threshold() == pytest.approx(1.8 + 2 * 0.16)

    def test_outlier_threshold_other_sigmas(self):
        spec = make_spec(cpi_mean=1.0, cpi_stddev=0.2)
        assert spec.outlier_threshold(3.0) == pytest.approx(1.6)
        assert spec.outlier_threshold(0.0) == pytest.approx(1.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="num_stddevs"):
            make_spec().outlier_threshold(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_samples"):
            make_spec(num_samples=-1)
        with pytest.raises(ValueError, match="cpi_mean"):
            make_spec(cpi_mean=0.0)
        with pytest.raises(ValueError, match="cpi_stddev"):
            make_spec(cpi_stddev=-0.1)

    def test_core_reexport(self):
        # Backwards-compatible import location must keep working.
        from repro.core.records import CpiSpec as CoreSpec
        assert CoreSpec is CpiSpec
