"""SampleColumns over the shared-memory wire, and the ring itself.

The sharded data plane re-serializes every closed window into a shared
segment (:meth:`SampleColumns.encode_into` / :meth:`SampleColumns.decode`)
and moves it through :class:`~repro.cluster.shm.ShmRing`.  These tests pin
the properties parity depends on: lossless (bit-exact floats, NaN
quarantine candidates included), order-preserving, correct across ring
wraparound, and deadlock-free under full-buffer backpressure.
"""

import math
import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import shm
from repro.cluster.shm import (ShmRecordTooLarge, ShmRing, ShmRingStalled,
                               live_segments, sweep_segments)
from repro.core.samplebatch import SampleColumns
from repro.records import CpiSample

from tests.conftest import make_sample

names = st.text(min_size=0, max_size=12)
metrics = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                    allow_infinity=False)

samples = st.builds(
    CpiSample,
    jobname=names,
    platforminfo=names,
    timestamp=st.integers(min_value=0, max_value=2**62),
    cpu_usage=metrics,
    cpi=metrics,
    taskname=names,
)


def roundtrip(batch: SampleColumns, copy: bool = False) -> SampleColumns:
    """Encode into a fresh buffer, decode back out."""
    buf = memoryview(bytearray(batch.encoded_nbytes))
    written = batch.encode_into(buf)
    assert written == batch.encoded_nbytes
    return SampleColumns.decode(buf, copy=copy)


def assert_batches_equal(left: SampleColumns, right: SampleColumns) -> None:
    assert left.keys == right.keys
    assert left.tasks == right.tasks
    for column in ("key_code", "task_code", "timestamp"):
        assert np.array_equal(getattr(left, column), getattr(right, column))
    for column in ("cpu_usage", "cpi"):
        # Bit-exact, not just value-equal: NaN payloads must survive too.
        assert (getattr(left, column).tobytes()
                == getattr(right, column).tobytes())


class TestWireFormat:
    @given(batch=st.lists(samples, max_size=40))
    @settings(max_examples=50)
    def test_roundtrip_is_lossless(self, batch):
        columns = SampleColumns.from_samples(batch)
        assert_batches_equal(roundtrip(columns), columns)
        assert roundtrip(columns, copy=True).to_samples() == batch

    def test_empty_batch(self):
        columns = SampleColumns.from_samples([])
        decoded = roundtrip(columns)
        assert len(decoded) == 0
        assert decoded.keys == ()
        assert decoded.tasks == ()
        assert decoded.to_samples() == []

    def test_nan_cpi_quarantine_candidates_survive(self):
        # The aggregator quarantines non-finite CPI *after* transport;
        # the wire must deliver the NaN bit pattern intact.
        batch = [make_sample(cpi=float("nan")),
                 make_sample(cpu_usage=float("nan"), cpi=0.0),
                 make_sample(cpi=float("inf"))]
        decoded = roundtrip(SampleColumns.from_samples(batch))
        assert math.isnan(decoded.cpi[0])
        assert math.isnan(decoded.cpu_usage[1])
        assert decoded.cpi[1] == 0.0
        assert math.isinf(decoded.cpi[2])

    def test_unicode_and_empty_names(self):
        batch = [make_sample(jobname="ジョブ/0", platforminfo="pf-β",
                             taskname=""),
                 make_sample(jobname="", platforminfo="", taskname="t")]
        decoded = roundtrip(SampleColumns.from_samples(batch), copy=True)
        assert decoded.to_samples() == batch

    def test_zero_copy_views_borrow_the_buffer(self):
        columns = SampleColumns.from_samples([make_sample(cpi=2.5)])
        buf = memoryview(bytearray(columns.encoded_nbytes))
        columns.encode_into(buf)
        decoded = SampleColumns.decode(buf)
        assert decoded.cpi[0] == 2.5
        # Zeroing the buffer shows through the view (it borrows)...
        buf[:] = b"\x00" * len(buf)
        assert decoded.cpi[0] == 0.0
        # ...unless materialized first.
        buf2 = memoryview(bytearray(columns.encoded_nbytes))
        columns.encode_into(buf2)
        detached = SampleColumns.decode(buf2).materialize()
        buf2[:] = b"\x00" * len(buf2)
        assert detached.cpi[0] == 2.5

    def test_corrupt_header_rejected(self):
        columns = SampleColumns.from_samples([make_sample()])
        buf = memoryview(bytearray(columns.encoded_nbytes))
        columns.encode_into(buf)
        buf[8] ^= 0xFF  # n_keys field
        with pytest.raises(ValueError, match="corrupt batch header"):
            SampleColumns.decode(buf)


class TestShmRing:
    def test_roundtrip_through_ring(self):
        ring = ShmRing.create(4096)
        try:
            batch = SampleColumns.from_samples(
                [make_sample(t=i, cpi=1.0 + i / 7) for i in range(20)])
            ring.write(batch.encoded_nbytes, batch.encode_into)
            decoded = SampleColumns.decode(ring.take(timeout=5))
            assert_batches_equal(decoded, batch)
            ring.commit()
        finally:
            ring.unlink()

    @given(sizes=st.lists(st.integers(min_value=0, max_value=900),
                          min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_wraparound_preserves_every_byte(self, sizes):
        # Capacity far below the byte total, so the cursor wraps many
        # times; interleaved take/commit keeps space available.
        ring = ShmRing.create(4096)
        try:
            for i, size in enumerate(sizes):
                payload = bytes((j + i) % 251 for j in range(size))
                ring.write_bytes(payload, timeout=5)
                got = bytes(ring.take(timeout=5))
                ring.commit()
                assert got == payload
        finally:
            ring.unlink()

    def test_full_buffer_backpressure_roundtrip(self):
        # Writer thread pushes ~16x the ring capacity; the reader drains
        # with commits, so the writer blocks and resumes instead of
        # failing — and every record arrives intact, in order.
        ring = ShmRing.create(4096)
        payloads = [bytes((i * 37 + j) % 256 for j in range(i % 1100))
                    for i in range(64)]
        failures = []

        def produce():
            try:
                for payload in payloads:
                    ring.write_bytes(payload, timeout=30)
            except BaseException as exc:  # pragma: no cover - test failure
                failures.append(exc)

        writer = threading.Thread(target=produce)
        writer.start()
        try:
            for payload in payloads:
                got = bytes(ring.take(timeout=30))
                ring.commit()
                assert got == payload
            writer.join(timeout=30)
            assert not writer.is_alive()
            assert not failures
        finally:
            writer.join(timeout=1)
            ring.unlink()

    def test_record_too_large_rejected_with_advice(self):
        ring = ShmRing.create(4096)
        try:
            with pytest.raises(ShmRecordTooLarge,
                               match="REPRO_SHM_RING_BYTES"):
                ring.write_bytes(b"x" * (ring.max_record_bytes + 1))
        finally:
            ring.unlink()

    def test_write_times_out_when_reader_stalls(self):
        ring = ShmRing.create(4096)
        try:
            ring.write_bytes(b"a" * ring.max_record_bytes)
            ring.write_bytes(b"b" * ring.max_record_bytes)
            with pytest.raises(ShmRingStalled, match="ring full"):
                ring.write_bytes(b"c" * ring.max_record_bytes, timeout=0.05)
        finally:
            ring.unlink()

    def test_take_surfaces_dead_writer(self):
        ring = ShmRing.create(4096)
        try:
            with pytest.raises(ShmRingStalled, match="died"):
                ring.take(timeout=5, is_alive=lambda: False)
        finally:
            ring.unlink()


class TestSegmentHygiene:
    def test_unlink_removes_segment(self):
        ring = ShmRing.create(4096)
        name = ring.name
        assert name in live_segments()
        assert shm.SEGMENT_PREFIX in name and str(os.getpid()) in name
        ring.unlink()
        assert name not in live_segments()
        with pytest.raises(FileNotFoundError):
            ShmRing.attach(name, 4096)

    def test_sweep_unlinks_leaks(self):
        ring = ShmRing.create(4096)
        name = ring.name
        assert sweep_segments() >= 1
        assert name not in live_segments()
        with pytest.raises(FileNotFoundError):
            ShmRing.attach(name, 4096)

    def test_env_capacity_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_RING_BYTES", "100")
        with pytest.raises(ValueError, match=">= 4096"):
            shm.default_ring_bytes()
        monkeypatch.setenv("REPRO_SHM_RING_BYTES", "8193")
        assert shm.default_ring_bytes() == 8200
