"""Unit tests for repro.perf.sampler (the 10s-per-minute duty cycle)."""

import pytest

from repro.perf.sampler import CpiSampler, SamplerConfig
from repro.testing import make_quiet_machine, make_scripted_job


def run_sampler(machine, sampler, seconds):
    """Drive machine+sampler; returns [(t, samples)] for closed windows."""
    collected = []
    for t in range(seconds):
        machine.tick(t)
        samples = sampler.tick(t)
        if samples:
            collected.append((t, samples))
    return collected


class TestSamplerConfig:
    def test_defaults_match_paper(self):
        config = SamplerConfig()
        assert config.duration_seconds == 10
        assert config.period_seconds == 60

    def test_validation(self):
        with pytest.raises(ValueError, match="duration"):
            SamplerConfig(duration_seconds=0)
        with pytest.raises(ValueError, match="period"):
            SamplerConfig(duration_seconds=10, period_seconds=5)


class TestDutyCycle:
    def test_one_window_per_minute(self):
        machine = make_quiet_machine()
        job = make_scripted_job("j", [1.0], cpu_limit=4.0)
        machine.place(job.tasks[0])
        sampler = CpiSampler(machine)
        collected = run_sampler(machine, sampler, 185)
        # Windows open at t=0,60,120 and close 10s later.
        assert [t for t, _ in collected] == [10, 70, 130]

    def test_sample_fields(self):
        machine = make_quiet_machine()
        job = make_scripted_job("j", [1.5], cpu_limit=4.0, base_cpi=2.0)
        machine.place(job.tasks[0])
        sampler = CpiSampler(machine)
        (_, samples), = run_sampler(machine, sampler, 11)
        sample = samples[0]
        assert sample.jobname == "j"
        assert sample.taskname == "j/0"
        assert sample.platforminfo == machine.platform.name
        assert sample.timestamp == 10 * 1_000_000
        assert sample.cpu_usage == pytest.approx(1.5)
        assert sample.cpi == pytest.approx(2.0 * machine.platform.cpi_scale)

    def test_cpi_averages_over_window(self):
        # Demand toggles 1.0/3.0 each second; the window must smooth it.
        machine = make_quiet_machine()
        job = make_scripted_job("j", [1.0, 3.0], cpu_limit=4.0)
        machine.place(job.tasks[0])
        sampler = CpiSampler(machine)
        (_, samples), = run_sampler(machine, sampler, 11)
        assert samples[0].cpu_usage == pytest.approx(2.0)

    def test_idle_task_yields_no_sample(self):
        machine = make_quiet_machine()
        job = make_scripted_job("j", [0.0], cpu_limit=4.0)
        machine.place(job.tasks[0])
        sampler = CpiSampler(machine)
        collected = run_sampler(machine, sampler, 61)
        assert collected == []

    def test_mid_window_arrival_skipped_once(self):
        machine = make_quiet_machine()
        sampler = CpiSampler(machine)
        job = make_scripted_job("j", [1.0], cpu_limit=4.0)
        collected = []
        for t in range(75):
            if t == 5:  # arrives inside the first window
                machine.place(job.tasks[0])
            machine.tick(t)
            samples = sampler.tick(t)
            if samples:
                collected.append((t, samples))
        # First window (closing at 10) skips it; second (closing at 70) has it.
        assert [t for t, _ in collected] == [70]

    def test_departed_task_dropped(self):
        from repro.cluster.task import TaskState
        machine = make_quiet_machine()
        job = make_scripted_job("j", [1.0], cpu_limit=4.0)
        machine.place(job.tasks[0])
        sampler = CpiSampler(machine)
        collected = []
        for t in range(15):
            machine.tick(t)
            if t == 5:
                machine.remove("j/0", TaskState.KILLED)
            samples = sampler.tick(t)
            if samples:
                collected.append(samples)
        assert collected == []

    def test_multiple_tasks_sampled_together(self):
        machine = make_quiet_machine()
        for name in ("a", "b", "c"):
            job = make_scripted_job(name, [1.0], cpu_limit=4.0)
            machine.place(job.tasks[0])
        sampler = CpiSampler(machine)
        (_, samples), = run_sampler(machine, sampler, 11)
        assert sorted(s.taskname for s in samples) == ["a/0", "b/0", "c/0"]

    def test_custom_duty_cycle(self):
        machine = make_quiet_machine()
        job = make_scripted_job("j", [1.0], cpu_limit=4.0)
        machine.place(job.tasks[0])
        sampler = CpiSampler(machine, SamplerConfig(duration_seconds=5,
                                                    period_seconds=20))
        collected = run_sampler(machine, sampler, 50)
        assert [t for t, _ in collected] == [5, 25, 45]
