"""The columnar sampling plane vs the scalar golden reference.

``REPRO_SAMPLER_ENGINE=vector`` closes sampling windows as array passes
over the machine's counter matrix and usage-ring matrix, emitting
``SampleColumns`` directly; ``scalar`` is the original per-task loop, kept
as the never-optimized reference.  Everything observable — samples,
incidents, specs, cap counters, discard counters, discard *events and their
order* — must match byte for byte (``float.hex()``), single-process and
sharded.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster.shards import run_sharded
from repro.cluster.task import TaskState
from repro.core.config import CpiConfig
from repro.core.samplebatch import SampleColumns, WindowSamples
from repro.experiments.chaos import chaos_scenario
from repro.experiments.scenarios import scale_scenario
from repro.obs import Observability
from repro.perf.sampler import (SAMPLER_ENGINE_ENV, SAMPLER_ENGINES,
                                CpiSampler, SamplerConfig,
                                default_sampler_engine)
from repro.testing import make_quiet_machine, make_scripted_job

# ---------------------------------------------------------------------------
# helpers


def _hex(x) -> str:
    return float(x).hex()


def _canon_samples(samples):
    return [(s.jobname, s.platforminfo, s.timestamp, _hex(s.cpu_usage),
             _hex(s.cpi), s.taskname) for s in samples]


def _drive(machine, sampler, seconds, skip_ticks=()):
    """Tick machine+sampler over ``seconds``; returns closed windows.

    ``skip_ticks`` seconds are skipped on the *machine* only (no charge
    arrives — the sampler still runs), which stands usage rings down.
    """
    collected = []
    for t in range(seconds):
        if t not in skip_ticks:
            machine.tick(t)
        samples = sampler.tick(t)
        if samples:
            collected.append((t, samples))
    return collected


def _discard_run(engine, seconds=11, skip_ticks=()):
    """One machine with an idle task among active ones: the idle task's
    windows discard as zero_instructions.  Returns everything observable."""
    obs = Observability()
    events = []
    obs.events.add_sink(events.append)
    machine = make_quiet_machine()
    machine.place(make_scripted_job("idle", [0.0], cpu_limit=4.0).tasks[0])
    machine.place(make_scripted_job("busy", [1.0], cpu_limit=4.0).tasks[0])
    machine.place(make_scripted_job("work", [2.0], cpu_limit=4.0).tasks[0])
    sampler = CpiSampler(machine, obs=obs, engine=engine)
    collected = _drive(machine, sampler, seconds, skip_ticks=skip_ticks)
    return {
        "windows": [(t, _canon_samples(samples)) for t, samples in collected],
        "discards": obs.metrics.total("sampler_windows_discarded"),
        "events": [e for e in events
                   if e["event"] == "sampler_window_discarded"],
    }


# ---------------------------------------------------------------------------
# engine selection


class TestEngineSelection:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(SAMPLER_ENGINE_ENV, raising=False)
        assert default_sampler_engine() == "vector"
        assert CpiSampler(make_quiet_machine()).engine == "vector"

    def test_env_selects_engine(self, monkeypatch):
        for engine in SAMPLER_ENGINES:
            monkeypatch.setenv(SAMPLER_ENGINE_ENV, engine)
            assert default_sampler_engine() == engine
            assert CpiSampler(make_quiet_machine()).engine == engine

    def test_env_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv(SAMPLER_ENGINE_ENV, "turbo")
        with pytest.raises(ValueError, match="turbo"):
            default_sampler_engine()

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv(SAMPLER_ENGINE_ENV, "scalar")
        assert CpiSampler(make_quiet_machine(), engine="vector").engine == \
            "vector"

    def test_constructor_rejects_unknown(self):
        with pytest.raises(ValueError, match="warp"):
            CpiSampler(make_quiet_machine(), engine="warp")


# ---------------------------------------------------------------------------
# the vector window is columns-first


class TestWindowSamples:
    def _one_window(self, engine):
        machine = make_quiet_machine()
        machine.place(make_scripted_job("j", [1.0], cpu_limit=4.0).tasks[0])
        sampler = CpiSampler(machine, engine=engine)
        (_, samples), = _drive(machine, sampler, 11)
        return samples

    def test_vector_window_is_lazy_columns(self):
        samples = self._one_window("vector")
        assert isinstance(samples, WindowSamples)
        assert isinstance(samples.columns, SampleColumns)
        assert samples._samples is None          # len/bool didn't materialize
        assert len(samples) == 1 and bool(samples)
        assert samples._samples is None
        assert samples[0].taskname == "j/0"      # first element access does
        assert samples._samples is not None

    def test_scalar_window_is_a_list(self):
        assert isinstance(self._one_window("scalar"), list)

    def test_windows_compare_equal_across_engines(self):
        assert self._one_window("vector") == self._one_window("scalar")

    def test_empty_window_is_falsy(self):
        machine = make_quiet_machine()   # no tasks at all
        sampler = CpiSampler(machine, engine="vector")
        sampler.tick(0)
        assert not sampler.tick(10)


# ---------------------------------------------------------------------------
# unit-level parity: discards, churn, ring stand-down


class TestUnitParity:
    def test_discard_counts_and_event_order_match(self):
        scalar = _discard_run("scalar")
        vector = _discard_run("vector")
        assert scalar["discards"] == vector["discards"] == 1.0
        assert scalar["events"] == vector["events"]
        assert vector["events"][0]["reason"] == "zero_instructions"
        assert scalar["windows"] == vector["windows"]

    def test_parity_with_machine_tick_gap(self):
        # Skipping machine seconds mid-window leaves charge gaps: rings
        # stand down permanently and the vector engine must fall back to
        # the deque scan per row — and still match the scalar engine.
        scalar = _discard_run("scalar", seconds=71, skip_ticks=(4, 63))
        vector = _discard_run("vector", seconds=71, skip_ticks=(4, 63))
        assert scalar == vector
        assert len(vector["windows"]) == 2

    def test_mid_window_arrival_and_departure_parity(self):
        def run(engine):
            machine = make_quiet_machine()
            machine.place(
                make_scripted_job("a", [1.0], cpu_limit=4.0).tasks[0])
            late = make_scripted_job("b", [1.0], cpu_limit=4.0)
            sampler = CpiSampler(machine, engine=engine)
            collected = []
            for t in range(75):
                if t == 5:
                    machine.place(late.tasks[0])   # arrives mid-window
                machine.tick(t)
                if t == 64:
                    machine.remove("a/0", TaskState.KILLED)  # departs mid-window
                samples = sampler.tick(t)
                if samples:
                    collected.append((t, _canon_samples(samples)))
            return collected

        scalar = run("scalar")
        assert run("vector") == scalar
        # First window: only the resident-at-open task; second: only the
        # survivor of the kill.
        assert [sorted(s[-1] for s in w) for _, w in scalar] == \
            [["a/0"], ["b/0"]]

    def test_custom_duty_cycle_parity(self):
        def run(engine):
            machine = make_quiet_machine()
            machine.place(
                make_scripted_job("j", [1.0, 3.0], cpu_limit=4.0).tasks[0])
            sampler = CpiSampler(
                machine, SamplerConfig(duration_seconds=5, period_seconds=20),
                engine=engine)
            return [(t, _canon_samples(s))
                    for t, s in _drive(machine, sampler, 50)]

        assert run("vector") == run("scalar")

    def test_legacy_tick_engine_with_vector_sampler(self, monkeypatch):
        # The vector sampler builds the machine's task table even when the
        # tick engine never would (REPRO_TICK_ENGINE=legacy); building it
        # must not perturb anything observable.
        monkeypatch.setenv("REPRO_TICK_ENGINE", "legacy")

        def run(engine):
            monkeypatch.setenv(SAMPLER_ENGINE_ENV, engine)
            scenario = scale_scenario(num_machines=2, seed=3,
                                      num_service_jobs=1, num_batch_jobs=1,
                                      tasks_per_job=4)
            scenario.pipeline.log_samples = True
            scenario.simulation.run(300)
            return _canon_samples(scenario.pipeline.sample_log)

        baseline = run("scalar")
        assert len(baseline) > 0
        assert run("vector") == baseline


class TestDiscardCounterCache:
    def test_counter_handle_cached_per_reason(self):
        obs = Observability()
        machine = make_quiet_machine()
        sampler = CpiSampler(machine, obs=obs, engine="vector")
        sampler._discard_window("t/0", "zero_instructions")
        handle = sampler._discard_counters["zero_instructions"]
        sampler._discard_window("t/0", "zero_instructions")
        assert sampler._discard_counters["zero_instructions"] is handle
        assert obs.metrics.total("sampler_windows_discarded") == 2.0

    def test_cache_invalidated_when_obs_swapped(self):
        machine = make_quiet_machine()
        sampler = CpiSampler(machine, obs=Observability(), engine="vector")
        sampler._discard_window("t/0", "zero_instructions")
        assert sampler._discard_counters
        replacement = Observability()
        sampler.obs = replacement   # what set_observability does
        sampler._discard_window("t/0", "non_finite_usage")
        assert set(sampler._discard_counters) == {"non_finite_usage"}
        assert replacement.metrics.total("sampler_windows_discarded") == 1.0

    def test_no_obs_no_counting(self):
        sampler = CpiSampler(make_quiet_machine(), engine="vector")
        sampler._discard_window("t/0", "zero_instructions")   # must not raise
        assert not sampler._discard_counters


# ---------------------------------------------------------------------------
# end-to-end golden parity, scalar vs vector engine


_SCALE_KWARGS = dict(num_machines=6, seed=11, num_service_jobs=2,
                     num_batch_jobs=2, tasks_per_job=6,
                     config=CpiConfig(spec_refresh_period=600,
                                      min_samples_per_task=5))

_CHAOS_KWARGS = dict(seed=0, num_machines=4, fault_profile="moderate",
                     fault_seed=1)


def _canon_incidents(incidents):
    return [(i.machine, i.time_seconds, i.victim_taskname, i.victim_jobname,
             _hex(i.victim_cpi), _hex(i.cpi_threshold),
             tuple((s.taskname, s.jobname, _hex(s.correlation))
                   for s in i.suspects),
             i.decision.action.value,
             None if i.post_cpi is None else _hex(i.post_cpi), i.recovered)
            for i in incidents]


def _canon_specs(aggregator):
    return sorted(
        (key.jobname, key.platforminfo, spec.num_samples,
         _hex(spec.cpu_usage_mean), _hex(spec.cpi_mean), _hex(spec.cpi_stddev))
        for key, spec in aggregator.specs().items())


def _run_single(builder, kwargs, seconds):
    scenario = builder(**kwargs)
    pipeline = scenario.pipeline
    pipeline.log_samples = True
    scenario.simulation.run(seconds)
    return {
        "samples": _canon_samples(pipeline.sample_log),
        "incidents": _canon_incidents(pipeline.all_incidents()),
        "specs": _canon_specs(pipeline.aggregator),
        "caps": pipeline.obs.metrics.total("caps_applied"),
        "discards": pipeline.obs.metrics.total("sampler_windows_discarded"),
    }


def _run_sharded(builder, kwargs, seconds, jobs):
    result = run_sharded(builder, kwargs, seconds=seconds, jobs=jobs,
                         log_samples=True)
    return {
        "samples": _canon_samples(result.sample_log),
        "incidents": _canon_incidents(result.all_incidents()),
        "specs": _canon_specs(result.pipeline.aggregator),
        "caps": result.pipeline.obs.metrics.total("caps_applied"),
        "discards": result.pipeline.obs.metrics.total(
            "sampler_windows_discarded"),
    }


class TestGoldenEngineParity:
    def test_scale_clean_parity_across_jobs(self, monkeypatch):
        """Clean fleet: scalar reference == vector engine, single-process
        and sharded at 1/2/4 workers, byte for byte."""
        seconds = 1200
        monkeypatch.setenv(SAMPLER_ENGINE_ENV, "scalar")
        baseline = _run_single(scale_scenario, _SCALE_KWARGS, seconds)
        assert len(baseline["samples"]) > 300   # not vacuously equal
        monkeypatch.setenv(SAMPLER_ENGINE_ENV, "vector")
        assert _run_single(scale_scenario, _SCALE_KWARGS,
                           seconds) == baseline
        for jobs in (1, 2, 4):
            assert _run_sharded(scale_scenario, _SCALE_KWARGS, seconds,
                                jobs) == baseline, f"jobs={jobs}"

    def test_chaos_moderate_parity_across_jobs(self, monkeypatch):
        """Moderate chaos: caps fire and machines churn; sample, incident,
        spec, cap-counter, and discard-counter streams must stay
        byte-identical."""
        seconds = 2400
        monkeypatch.setenv(SAMPLER_ENGINE_ENV, "scalar")
        baseline = _run_single(chaos_scenario, _CHAOS_KWARGS, seconds)
        assert len(baseline["incidents"]) > 0   # detection fired
        assert baseline["caps"] > 0             # caps actually applied
        monkeypatch.setenv(SAMPLER_ENGINE_ENV, "vector")
        assert _run_single(chaos_scenario, _CHAOS_KWARGS,
                           seconds) == baseline
        for jobs in (1, 2, 4):
            assert _run_sharded(chaos_scenario, _CHAOS_KWARGS, seconds,
                                jobs) == baseline, f"jobs={jobs}"
