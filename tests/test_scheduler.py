"""Unit tests for repro.cluster.scheduler."""

import pytest

from repro.cluster.scheduler import ClusterScheduler, PlacementError
from repro.cluster.task import SchedulingClass, TaskState
from repro.testing import make_quiet_machine, make_scripted_job


def make_fleet(n=4):
    return [make_quiet_machine(f"m{i}") for i in range(n)]


def scheduler(machines=None, **kwargs):
    return ClusterScheduler(machines or make_fleet(), **kwargs)


class TestConstruction:
    def test_needs_machines(self):
        with pytest.raises(ValueError, match="at least one machine"):
            ClusterScheduler([])

    def test_duplicate_machine_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClusterScheduler([make_quiet_machine("m"), make_quiet_machine("m")])

    def test_overcommit_validation(self):
        with pytest.raises(ValueError, match="batch_overcommit"):
            scheduler(batch_overcommit=0.5)
        with pytest.raises(ValueError, match="best_effort_overcommit"):
            scheduler(batch_overcommit=2.0, best_effort_overcommit=1.5)


class TestSubmitAndSpread:
    def test_all_tasks_placed(self):
        sched = scheduler()
        job = make_scripted_job("j", [1.0], num_tasks=8, cpu_limit=2.0)
        sched.submit(job)
        assert all(t.state is TaskState.RUNNING for t in job)

    def test_worst_fit_spreads_load(self):
        machines = make_fleet(4)
        sched = ClusterScheduler(machines)
        job = make_scripted_job("j", [1.0], num_tasks=4, cpu_limit=2.0)
        sched.submit(job)
        # Worst-fit should land one task per machine.
        assert sorted(m.num_tasks for m in machines) == [1, 1, 1, 1]

    def test_duplicate_job_rejected(self):
        sched = scheduler()
        job = make_scripted_job("j", [1.0])
        sched.submit(job)
        with pytest.raises(ValueError, match="already submitted"):
            sched.submit(make_scripted_job("j", [1.0]))


class TestAdmissionControl:
    def test_ls_never_oversubscribed(self):
        # One 24-core machine; each LS task reserves 10 -> only 2 fit.
        machines = [make_quiet_machine("m0")]
        sched = ClusterScheduler(machines)
        job = make_scripted_job("ls", [1.0], num_tasks=3, cpu_limit=10.0)
        with pytest.raises(PlacementError):
            sched.submit(job)
        assert machines[0].reserved_cpu(SchedulingClass.LATENCY_SENSITIVE) <= 24

    def test_batch_overcommits(self):
        machines = [make_quiet_machine("m0")]
        sched = ClusterScheduler(machines, batch_overcommit=1.5)
        # 24 cores * 1.5 = 36 reservable; 3 batch tasks of 12 fit.
        job = make_scripted_job("b", [1.0], num_tasks=3, cpu_limit=12.0,
                                scheduling_class=SchedulingClass.BATCH)
        sched.submit(job)
        assert machines[0].num_tasks == 3

    def test_batch_overcommit_limit_enforced(self):
        machines = [make_quiet_machine("m0")]
        sched = ClusterScheduler(machines, batch_overcommit=1.5)
        job = make_scripted_job("b", [1.0], num_tasks=4, cpu_limit=12.0,
                                scheduling_class=SchedulingClass.BATCH)
        sched.submit(job)  # 4th task cannot fit; batch waits quietly
        assert machines[0].num_tasks == 3
        assert len(job.pending_tasks()) == 1

    def test_best_effort_overcommits_harder(self):
        machines = [make_quiet_machine("m0")]
        sched = ClusterScheduler(machines, batch_overcommit=1.5,
                                 best_effort_overcommit=2.5)
        job = make_scripted_job("be", [1.0], num_tasks=5, cpu_limit=12.0,
                                scheduling_class=SchedulingClass.BEST_EFFORT)
        sched.submit(job)
        assert machines[0].num_tasks == 5  # 60 <= 24 * 2.5


class TestPreemption:
    def test_ls_preempts_batch(self):
        machines = [make_quiet_machine("m0")]
        sched = ClusterScheduler(machines, batch_overcommit=1.5)
        batch = make_scripted_job("b", [1.0], num_tasks=3, cpu_limit=12.0,
                                  scheduling_class=SchedulingClass.BATCH)
        sched.submit(batch)
        ls = make_scripted_job("ls", [1.0], num_tasks=1, cpu_limit=20.0)
        sched.submit(ls)
        assert ls.tasks[0].state is TaskState.RUNNING
        assert sched.preemption_count >= 1
        preempted = [t for t in batch if t.state is TaskState.PREEMPTED]
        assert preempted

    def test_preempted_batch_reschedules_elsewhere(self):
        machines = [make_quiet_machine("m0"), make_quiet_machine("m1")]
        sched = ClusterScheduler(machines, batch_overcommit=1.5)
        batch = make_scripted_job("b", [1.0], num_tasks=5, cpu_limit=12.0,
                                  scheduling_class=SchedulingClass.BATCH)
        sched.submit(batch)
        ls = make_scripted_job("ls", [1.0], num_tasks=2, cpu_limit=20.0)
        sched.submit(ls)
        placed = sched.reschedule_pending()
        running = [t for t in batch if t.state is TaskState.RUNNING]
        # Everything that can run again does.
        assert placed >= 0
        assert len(running) + len(batch.pending_tasks()) == 5

    def test_best_effort_evicted_before_batch(self):
        machines = [make_quiet_machine("m0")]
        sched = ClusterScheduler(machines, batch_overcommit=1.5,
                                 best_effort_overcommit=1.5)
        be = make_scripted_job("be", [1.0], num_tasks=1, cpu_limit=12.0,
                               scheduling_class=SchedulingClass.BEST_EFFORT)
        batch = make_scripted_job("b", [1.0], num_tasks=2, cpu_limit=12.0,
                                  scheduling_class=SchedulingClass.BATCH)
        sched.submit(be)
        sched.submit(batch)
        ls = make_scripted_job("ls", [1.0], num_tasks=1, cpu_limit=20.0)
        sched.submit(ls)
        assert be.tasks[0].state is TaskState.PREEMPTED


class TestAntiAffinity:
    def test_pairs_never_colocated(self):
        machines = make_fleet(3)
        sched = ClusterScheduler(machines)
        sched.avoid_colocation("victim", "antagonist")
        victim = make_scripted_job("victim", [1.0], num_tasks=2, cpu_limit=2.0)
        antagonist = make_scripted_job(
            "antagonist", [1.0], num_tasks=2, cpu_limit=2.0,
            scheduling_class=SchedulingClass.BATCH)
        sched.submit(victim)
        sched.submit(antagonist)
        for machine in machines:
            jobs = {t.job.name for t in machine.resident_tasks()}
            assert not ("victim" in jobs and "antagonist" in jobs)

    def test_self_pair_rejected(self):
        sched = scheduler()
        with pytest.raises(ValueError, match="itself"):
            sched.avoid_colocation("j", "j")


class TestMigration:
    def test_migrate_moves_to_other_machine(self):
        machines = make_fleet(2)
        sched = ClusterScheduler(machines)
        job = make_scripted_job("j", [1.0], cpu_limit=2.0)
        sched.submit(job)
        task = job.tasks[0]
        origin = task.machine_name
        sched.migrate_task(task)
        assert task.machine_name is not None
        assert task.machine_name != origin
        assert task.state is TaskState.RUNNING

    def test_migrate_unplaced_raises(self):
        sched = scheduler()
        job = make_scripted_job("j", [1.0])
        with pytest.raises(ValueError, match="not placed"):
            sched.migrate_task(job.tasks[0])

    def test_migrate_batch_with_nowhere_to_go(self):
        machines = [make_quiet_machine("m0")]
        sched = ClusterScheduler(machines)
        job = make_scripted_job("b", [1.0], cpu_limit=2.0,
                                scheduling_class=SchedulingClass.BATCH)
        sched.submit(job)
        with pytest.raises(PlacementError, match="no machine can host"):
            sched.migrate_task(job.tasks[0])
        # And the task must be restored to where it was, still running.
        assert job.tasks[0].state is TaskState.RUNNING
        assert job.tasks[0].machine_name == "m0"


class TestFleetViews:
    def test_utilization(self):
        machines = [make_quiet_machine("m0")]
        sched = ClusterScheduler(machines)
        job = make_scripted_job("j", [1.0], num_tasks=2, cpu_limit=6.0)
        sched.submit(job)
        assert sched.utilization()["m0"] == pytest.approx(12.0 / 24.0)

    def test_tasks_per_machine(self):
        sched = scheduler()
        job = make_scripted_job("j", [1.0], num_tasks=6, cpu_limit=2.0)
        sched.submit(job)
        assert sum(sched.tasks_per_machine()) == 6
