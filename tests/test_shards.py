"""Golden-parity tests: sharded multi-core execution vs single-process.

``run_sharded`` must be *bit-identical* to running the same scenario in
one process — same CPI sample stream, same published specs, same
incidents, same fault and quarantine counters — at any worker count.
These tests pin that contract at 1/2/4 shards, clean and under injected
chaos (including corrupted samples crossing the columnar wire into the
aggregator's quarantine), comparing floats by their hex representation so
"close enough" can never creep in.

The unit tests at the bottom pin the building blocks: deterministic shard
planning, the global barrier schedule, lossless columnar round-trips,
``ingest_batch``'s bit-equivalence to scalar ``ingest``, the shardability
guards, and crash surfacing (a dead worker must raise
:class:`~repro.cluster.shards.ShardCrashed` naming its machines, never
hang the coordinator).
"""

from __future__ import annotations

import glob
import math
import os

import pytest

from repro.cluster.shards import (ShardCrashed, ShardPool,
                                  ShardedRunUnsupported, plan_shards,
                                  run_sharded)
from repro.cluster.shardworker import barrier_ticks, check_shardable
from repro.core.aggregator import CpiAggregator
from repro.core.config import CpiConfig
from repro.core.samplebatch import SampleColumns
from repro.experiments.chaos import ANTAGONIST_JOBS, chaos_scenario
from repro.experiments.scenarios import build_cluster, scale_scenario
from repro.obs import Observability
from repro.perf.sampler import SamplerConfig
from repro.records import CpiSample
from repro.workloads import make_batch_job_spec

#: Fleet-total counters that must merge exactly (per-worker counters like
#: ``sim_ticks`` intentionally count worker work, not fleet work).
COMPARED_COUNTERS = (
    "samples_ingested",
    "samples_quarantined",
    "aggregator_samples_rejected",
    "transport_faults",
    "agent_crashes",
    "anomalies_detected",
    "caps_applied",
    "analyses_dropped",
)


def _hex(x) -> str:
    return float(x).hex()


def _canon_samples(samples) -> list[tuple]:
    """Byte-faithful canonical form of a CpiSample stream."""
    return [(s.jobname, s.platforminfo, s.timestamp, _hex(s.cpu_usage),
             _hex(s.cpi), s.taskname) for s in samples]


def _canon_incidents(incidents) -> list[tuple]:
    """Canonical incidents, minus the (per-process) incident_id.

    Works for live incidents (scheduler-task targets) and shipped ones
    (name-only stubs) alike — both expose ``.name`` / ``.job.name``.
    """
    return [(
        i.machine, i.time_seconds, i.victim_taskname, i.victim_jobname,
        _hex(i.victim_cpi), _hex(i.cpi_threshold),
        tuple((s.taskname, s.jobname, _hex(s.correlation))
              for s in i.suspects),
        i.decision.action.value,
        None if i.decision.target is None else i.decision.target.name,
        None if i.decision.target is None else i.decision.target.job.name,
        None if i.post_cpi is None else _hex(i.post_cpi),
        i.recovered,
    ) for i in incidents]


def _canon_specs(aggregator) -> list[tuple]:
    """The published spec map, hex-canonical and sorted by key."""
    return sorted(
        (key.jobname, key.platforminfo, spec.num_samples,
         _hex(spec.cpu_usage_mean), _hex(spec.cpi_mean),
         _hex(spec.cpi_stddev))
        for key, spec in aggregator.specs().items())


def _counter_totals(obs) -> dict[str, float]:
    return {name: obs.metrics.total(name) for name in COMPARED_COUNTERS}


def _precision(canon_incidents) -> tuple[int, int, int]:
    """(incidents, identified, correctly identified) from canonical form."""
    identified = [i for i in canon_incidents if i[8] is not None]
    true_identified = [i for i in identified if i[9] in ANTAGONIST_JOBS]
    return len(canon_incidents), len(identified), len(true_identified)


def _single(builder, kwargs, seconds: int, counters: bool) -> dict:
    scenario = builder(**kwargs)
    pipeline = scenario.pipeline
    pipeline.log_samples = True
    scenario.simulation.run(seconds)
    return {
        "samples": _canon_samples(pipeline.sample_log),
        "incidents": _canon_incidents(pipeline.all_incidents()),
        "specs": _canon_specs(pipeline.aggregator),
        "total": pipeline.total_samples,
        "faults": (pipeline.faults.total_faults_injected
                   if pipeline.faults is not None else 0),
        "counters": _counter_totals(pipeline.obs) if counters else None,
    }


def _sharded(builder, kwargs, seconds: int, jobs: int,
             counters: bool) -> dict:
    result = run_sharded(builder, kwargs, seconds=seconds, jobs=jobs,
                         log_samples=True)
    pipeline = result.pipeline
    return {
        "samples": _canon_samples(result.sample_log),
        "incidents": _canon_incidents(result.all_incidents()),
        "specs": _canon_specs(pipeline.aggregator),
        "total": result.total_samples,
        "faults": result.total_faults_injected,
        "counters": _counter_totals(pipeline.obs) if counters else None,
    }


# -- end-to-end golden parity -------------------------------------------------


#: Small enough to run four times in a test, big enough that shard plans
#: at 2 and 4 workers split both jobs and platforms across processes.
SCALE_KWARGS = dict(num_machines=6, seed=11, num_service_jobs=2,
                    num_batch_jobs=2, tasks_per_job=6,
                    config=CpiConfig(spec_refresh_period=600,
                                     min_samples_per_task=5))

#: The chaos experiment's workload: transport faults, crashes, retries.
CHAOS_KWARGS = dict(seed=0, num_machines=4, fault_profile="moderate",
                    fault_seed=1)

#: Parameters chosen (by scan) so corrupted batches actually reach the
#: aggregator and get quarantined — exercising ``ingest_batch``'s reject
#: path across the columnar wire.
QUARANTINE_KWARGS = dict(seed=0, num_machines=3, fault_profile="heavy",
                         fault_seed=2)


def test_sharded_clean_parity():
    """Clean fleet: byte-identical samples/specs at 1, 2, and 4 shards."""
    seconds = 20 * 60
    baseline = _single(scale_scenario, SCALE_KWARGS, seconds, counters=False)
    assert len(baseline["samples"]) > 400      # not vacuously equal
    assert len(baseline["specs"]) > 0          # refresh actually published
    for jobs in (1, 2, 4):
        assert _sharded(scale_scenario, SCALE_KWARGS, seconds, jobs,
                        counters=False) == baseline, f"jobs={jobs}"


def test_sharded_chaos_parity():
    """Moderate chaos: samples, incidents, faults, and counters all match.

    The chaos headline numbers (precision / recall inputs) are derived
    from the incident stream, so their parity is checked here too.
    """
    seconds = 3600
    baseline = _single(chaos_scenario, CHAOS_KWARGS, seconds, counters=True)
    assert baseline["faults"] > 0              # the profile must inject
    assert len(baseline["incidents"]) > 0      # detection must fire
    base_quality = _precision(baseline["incidents"])
    assert base_quality[2] > 0                 # antagonist correctly named
    for jobs in (1, 2, 4):
        sharded = _sharded(chaos_scenario, CHAOS_KWARGS, seconds, jobs,
                           counters=True)
        assert sharded == baseline, f"jobs={jobs}"
        assert _precision(sharded["incidents"]) == base_quality


def test_sharded_quarantine_parity():
    """Heavy chaos: corrupted samples cross the wire and are rejected.

    Pins that ``ingest_batch``'s quarantine path — fed columnar batches
    shipped from worker processes — rejects exactly the samples the
    single-process scalar path does, reason counters included.
    """
    seconds = 3600
    baseline = _single(chaos_scenario, QUARANTINE_KWARGS, seconds,
                       counters=True)
    assert baseline["counters"]["aggregator_samples_rejected"] > 0
    sharded = _sharded(chaos_scenario, QUARANTINE_KWARGS, seconds, jobs=2,
                       counters=True)
    assert sharded == baseline


# -- crash surfacing ----------------------------------------------------------


def _crashing_scenario():
    """A shardable fleet whose machine ``m1`` kills its process at t>=120."""
    scenario = scale_scenario(num_machines=4, seed=11, num_service_jobs=1,
                              num_batch_jobs=1, tasks_per_job=4)

    def hook(t, machine, result):
        if machine.name == "m1" and t >= 120:
            os._exit(3)

    scenario.simulation.add_tick_hook(hook)
    return scenario


def test_worker_death_raises_shard_crashed():
    """A dying worker surfaces as ShardCrashed naming its machines — no hang."""
    pool = ShardPool()
    try:
        with pytest.raises(ShardCrashed) as excinfo:
            run_sharded(_crashing_scenario, seconds=240, jobs=2,
                        barrier_timeout=60.0, pool=pool)
        error = excinfo.value
        assert "m1" in error.machines
        assert "m1" in str(error)
        assert "died mid-run" in str(error)
        # The crash reset the pool (unknown protocol state)...
        assert pool.size == 0
        # ...and the very next lease serves a clean run.
        result = run_sharded(scale_scenario, _POOL_KWARGS,
                             seconds=300, jobs=2, pool=pool)
        assert result.total_samples > 0
    finally:
        pool.shutdown()


# -- pool lifecycle and segment hygiene ---------------------------------------


#: Small but real: two shards, a few windows, a spec refresh.
_POOL_KWARGS = dict(num_machines=4, seed=3, num_service_jobs=1,
                    num_batch_jobs=1, tasks_per_job=4,
                    config=CpiConfig(spec_refresh_period=600,
                                     min_samples_per_task=5))


def _repro_segments() -> set[str]:
    """repro-owned segment files currently present in /dev/shm."""
    return set(glob.glob("/dev/shm/repro-shm-*"))


def test_warm_pool_reuses_workers_and_prebuilds():
    """Reruns spawn no processes, and the third run hits a prebuilt replica."""
    pool = ShardPool()
    try:
        results = [run_sharded(scale_scenario, _POOL_KWARGS, seconds=300,
                               jobs=2, pool=pool) for _ in range(3)]
        assert pool.spawned_total == 2          # paid once, not per run
        first, second, third = (r.timers.report() for r in results)
        assert first["worker_build"]["calls"] == 2
        assert "worker_prebuild" not in first
        # Same scenario twice seen -> workers prebuild after run 2's
        # release, so run 3 starts on a warm replica and never builds.
        assert "worker_build" not in third
        assert third["worker_prebuild"]["calls"] == 2
        # Parity is untouched by pool temperature.
        assert [_canon_specs(r.pipeline.aggregator) for r in results[1:]] \
            == [_canon_specs(results[0].pipeline.aggregator)] * 2
    finally:
        pool.shutdown()


def test_no_segment_leak_after_clean_run():
    before = _repro_segments()
    pool = ShardPool()
    try:
        run_sharded(scale_scenario, _POOL_KWARGS, seconds=300, jobs=2,
                    pool=pool)
    finally:
        pool.shutdown()
    assert _repro_segments() == before


def test_no_segment_leak_after_worker_crash():
    before = _repro_segments()
    pool = ShardPool()
    try:
        with pytest.raises(ShardCrashed):
            run_sharded(_crashing_scenario, seconds=240, jobs=2,
                        barrier_timeout=60.0, pool=pool)
    finally:
        pool.shutdown()
    assert _repro_segments() == before


def test_pool_recovers_after_external_sweep():
    """sweep_segments() is process-global; leasing must heal, not dangle.

    The crash backstop can close a live pool's rings out from under it
    (e.g. another component sweeping on its own failure path).  The next
    lease has to notice the dead mappings and respawn.
    """
    from repro.cluster.shm import sweep_segments

    pool = ShardPool()
    try:
        first = run_sharded(scale_scenario, _POOL_KWARGS, seconds=300,
                            jobs=2, pool=pool)
        assert sweep_segments() >= 2            # yanks both pool rings
        again = run_sharded(scale_scenario, _POOL_KWARGS, seconds=300,
                            jobs=2, pool=pool)
        assert pool.spawned_total == 4          # both workers respawned
        assert _canon_specs(again.pipeline.aggregator) \
            == _canon_specs(first.pipeline.aggregator)
    finally:
        pool.shutdown()


def test_no_segment_leak_after_keyboard_interrupt(monkeypatch):
    """Ctrl-C mid-barrier resets the pool and unlinks every segment."""
    import repro.cluster.shards as shards_module

    def interrupt(*args, **kwargs):
        raise KeyboardInterrupt

    before = _repro_segments()
    pool = ShardPool()
    try:
        monkeypatch.setattr(shards_module, "_replay_barrier", interrupt)
        with pytest.raises(KeyboardInterrupt):
            run_sharded(scale_scenario, _POOL_KWARGS, seconds=300, jobs=2,
                        pool=pool)
        assert pool.size == 0
    finally:
        pool.shutdown()
    assert _repro_segments() == before


# -- shard planning and the barrier schedule ----------------------------------


def test_plan_shards_round_robin():
    assert plan_shards(["m3", "m0", "m2", "m1"], 2) == (("m0", "m2"),
                                                        ("m1", "m3"))
    assert plan_shards(["m0", "m1", "m2"], 2) == (("m0", "m2"), ("m1",))


def test_plan_shards_clamps_to_machine_count():
    assert plan_shards(["a", "b"], 8) == (("a",), ("b",))


def test_plan_shards_rejects_bad_input():
    with pytest.raises(ValueError):
        plan_shards([], 2)
    with pytest.raises(ValueError):
        plan_shards(["a"], 0)


def test_barrier_ticks_are_window_close_ticks():
    assert barrier_ticks(SamplerConfig(10, 60), 200) == [10, 70, 130, 190]
    assert barrier_ticks(SamplerConfig(10, 60), 10) == []


# -- the columnar wire format -------------------------------------------------


def _mixed_samples() -> list[CpiSample]:
    return [
        CpiSample("job-a", "westmere-2.6", 1_000_000, 0.5, 1.25, "job-a/0"),
        CpiSample("job-a", "westmere-2.6", 1_000_001, 0.75, 1.5, "job-a/1"),
        CpiSample("job-b", "clovertown-2.3", 1_000_002, 1.5, 0.875, "job-b/0"),
        CpiSample("job-a", "westmere-2.6", 1_000_003, 0.1, 3.0, "job-a/0"),
        CpiSample("job-c", "westmere-2.6", 1_000_004, 2.0, 1.125, None),
    ]


def test_sample_columns_round_trip_is_lossless():
    originals = _mixed_samples()
    batch = SampleColumns.from_samples(originals)
    assert len(batch) == len(originals)
    assert len(batch.keys) == 3       # (job, platform) pairs dedup
    assert len(batch.tasks) == 4      # task names dedup (None included)
    assert _canon_samples(batch.to_samples()) == _canon_samples(originals)
    assert batch.to_samples() == originals
    assert batch.nbytes == len(originals) * (4 + 4 + 8 + 8 + 8)


def test_sample_columns_empty_batch():
    batch = SampleColumns.from_samples([])
    assert len(batch) == 0
    assert batch.to_samples() == []
    CpiAggregator(CpiConfig()).ingest_batch(batch)  # no-op, no error


# -- ingest_batch == scalar ingest, bit for bit -------------------------------


def _quarantine_mix() -> list[CpiSample]:
    """Plausible samples interleaved with every quarantine reason."""
    bound = CpiConfig().quarantine_cpi_bound
    return [
        CpiSample("svc", "westmere-2.6", 1, 0.5, 1.25, "svc/0"),
        CpiSample("svc", "westmere-2.6", 2, 0.5, math.nan, "svc/0"),
        CpiSample("svc", "westmere-2.6", 3, math.inf, 1.0, "svc/1"),
        CpiSample("svc", "westmere-2.6", 4, 0.5, 0.0, "svc/1"),
        CpiSample("svc", "westmere-2.6", 5, 0.5, bound * 2, "svc/0"),
        CpiSample("svc", "westmere-2.6", 6, 0.7, 1.31, "svc/1"),
        CpiSample("batch", "clovertown-2.3", 7, 1.1, 2.25, None),
        CpiSample("svc", "clovertown-2.3", 8, 0.9, 1.75, "svc/2"),
    ]


def _canon_state(aggregator: CpiAggregator) -> list[tuple]:
    return sorted(
        ((key.jobname, key.platforminfo, stats.count, _hex(stats.mean),
          _hex(stats.m2), _hex(stats.usage_sum),
          tuple(sorted(stats.samples_per_task.items())))
         for key, stats in aggregator._current.items()))


def test_ingest_batch_matches_scalar_ingest():
    """Same samples, same accumulators, same reject counters — bit-exact."""
    samples = _quarantine_mix()
    obs_scalar, obs_batch = Observability(), Observability()
    scalar = CpiAggregator(CpiConfig(), obs=obs_scalar)
    batch = CpiAggregator(CpiConfig(), obs=obs_batch)
    scalar.ingest_many(samples)
    batch.ingest_batch(SampleColumns.from_samples(samples))
    assert _canon_state(batch) == _canon_state(scalar)
    assert batch.total_samples_ingested == scalar.total_samples_ingested == 4
    assert batch.total_samples_rejected == scalar.total_samples_rejected == 4

    def rejects(obs):
        return sorted((c.labels, c.value) for c in
                      obs.metrics.counters("aggregator_samples_rejected"))

    assert rejects(obs_batch) == rejects(obs_scalar)
    assert len(rejects(obs_batch)) == 4    # one counter per distinct reason
    assert (obs_batch.metrics.total("samples_ingested")
            == obs_scalar.metrics.total("samples_ingested") == 4)


# -- shardability guards ------------------------------------------------------


def test_check_shardable_refuses_migration():
    scenario = build_cluster(2, seed=0, enable_migration=True)
    with pytest.raises(ShardedRunUnsupported, match="enable_migration"):
        check_shardable(scenario)


def test_check_shardable_refuses_pending_tasks():
    scenario = build_cluster(1, seed=0)
    scenario.submit(make_batch_job_spec("big", num_tasks=400, seed=1,
                                        cpu_limit_per_task=2.0))
    with pytest.raises(ShardedRunUnsupported, match="big"):
        check_shardable(scenario)


def test_check_shardable_rejects_non_scenario():
    with pytest.raises(TypeError):
        check_shardable(object())


def test_run_sharded_rejects_unsupported_scenarios():
    with pytest.raises(ShardedRunUnsupported):
        run_sharded(build_cluster, dict(num_machines=2, seed=0,
                                        enable_migration=True),
                    seconds=60, jobs=2)
