"""Unit tests for repro.cluster.simulation."""

import pytest

from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.testing import make_quiet_machine, make_scripted_job


def make_sim(n_machines=2, **config_kwargs):
    machines = [make_quiet_machine(f"m{i}") for i in range(n_machines)]
    return ClusterSimulation(machines, SimConfig(**config_kwargs))


class TestConstruction:
    def test_needs_machines(self):
        with pytest.raises(ValueError, match="at least one machine"):
            ClusterSimulation([])

    def test_config_validation(self):
        with pytest.raises(ValueError, match="reschedule_period"):
            SimConfig(reschedule_period=0)

    def test_machines_get_spawned_rngs(self):
        sim = make_sim(3, seed=5)
        rngs = {id(m.rng) for m in sim.machines.values()}
        assert len(rngs) == 3


class TestClock:
    def test_step_advances_clock(self):
        sim = make_sim()
        assert sim.now == 0
        sim.step()
        assert sim.now == 1

    def test_run_seconds(self):
        sim = make_sim()
        sim.run(90)
        assert sim.now == 90

    def test_run_minutes_and_hours(self):
        sim = make_sim()
        sim.run_minutes(2)
        assert sim.now == 120
        sim.run_hours(0.5)
        assert sim.now == 120 + 1800

    def test_negative_run_rejected(self):
        with pytest.raises(ValueError):
            make_sim().run(-1)


class TestHooksAndSinks:
    def test_tick_hooks_called_per_machine(self):
        sim = make_sim(2)
        calls = []
        sim.add_tick_hook(lambda t, m, r: calls.append((t, m.name)))
        sim.step()
        assert calls == [(0, "m0"), (0, "m1")]

    def test_sample_sink_receives_windows(self):
        sim = make_sim(1)
        job = make_scripted_job("j", [1.0], cpu_limit=4.0)
        sim.scheduler.submit(job)
        received = []
        sim.add_sample_sink(lambda t, name, samples: received.append((t, name, len(samples))))
        sim.run(61)
        assert received == [(10, "m0", 1)]

    def test_sink_not_called_without_samples(self):
        sim = make_sim(1)  # no jobs
        received = []
        sim.add_sample_sink(lambda *a: received.append(a))
        sim.run(61)
        assert received == []


class TestRescheduling:
    def test_pending_batch_gets_placed_when_room_appears(self):
        from repro.cluster.task import SchedulingClass, TaskState
        machines = [make_quiet_machine("m0")]
        sim = ClusterSimulation(machines, SimConfig(reschedule_period=60))
        # Fill the machine past batch overcommit so one batch task waits.
        filler = make_scripted_job("filler", [1.0], num_tasks=3,
                                   cpu_limit=12.0, complete_at=30,
                                   scheduling_class=SchedulingClass.BATCH)
        waiter = make_scripted_job("waiter", [1.0], cpu_limit=12.0,
                                   scheduling_class=SchedulingClass.BATCH)
        sim.scheduler.submit(filler)
        sim.scheduler.submit(waiter)
        assert waiter.tasks[0].state is TaskState.PENDING
        sim.run(121)  # fillers complete at t=30; reschedule at t=60
        assert waiter.tasks[0].state is TaskState.RUNNING


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        def trace(seed):
            machines = [make_quiet_machine("m0")]
            machines[0].cpi_noise_sigma = 0.05
            sim = ClusterSimulation(machines, SimConfig(seed=seed))
            job = make_scripted_job("j", [1.0], cpu_limit=4.0)
            sim.scheduler.submit(job)
            cpis = []
            sim.add_tick_hook(
                lambda t, m, r: cpis.append(r.cpis.get("j/0")))
            sim.run(30)
            return cpis

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)
