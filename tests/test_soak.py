"""Tests for the churn soak harness (repro.experiments.soak)."""

from __future__ import annotations

import json

import pytest

from repro.core.specstore import SNAPSHOT_FILENAME, WAL_FILENAME
from repro.experiments.soak import SoakCheck, run_soak, soak_config
from repro.obs import Observability

#: Shortest configuration that still kills, snapshots, and churns twice:
#: kills at 400 and 800, snapshots every 300 s, three churn waves.
SMOKE_KWARGS = dict(seconds=900, num_machines=3, kill_period=400,
                    outage_seconds=20, seed=0, fault_seed=1)


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    store = tmp_path_factory.mktemp("specstore")
    config = soak_config(specstore_snapshot_interval=300,
                         spec_refresh_period=600)
    report = run_soak(config=config, store_dir=str(store), **SMOKE_KWARGS)
    return report, store


class TestSmokeSoak:
    def test_all_checks_pass(self, smoke_report):
        report, _ = smoke_report
        assert report.passed, report.render()

    def test_recovery_really_happened(self, smoke_report):
        report, _ = smoke_report
        assert report.kill_ticks == (400, 800)
        assert report.restarts == 2
        assert report.records_replayed > 0
        assert report.snapshots > 0
        assert report.drift["exact"] is True

    def test_churn_really_happened(self, smoke_report):
        report, _ = smoke_report
        assert report.arrivals > 0
        assert report.total_samples > 0

    def test_store_files_on_disk(self, smoke_report):
        _, store = smoke_report
        assert (store / WAL_FILENAME).exists()
        assert (store / SNAPSHOT_FILENAME).exists()

    def test_report_json_shape(self, smoke_report):
        report, _ = smoke_report
        data = json.loads(report.to_json())
        assert data["passed"] is True
        assert data["kill_ticks"] == [400, 800]
        assert {c["name"] for c in data["checks"]} == {
            "zero_spec_drift", "bounded_rss", "bounded_objects",
            "wal_compaction_bounds_wal", "every_kill_recovered",
            "recovery_telemetry_counted"}
        assert all(c["passed"] for c in data["checks"])

    def test_render_lists_every_check(self, smoke_report):
        report, _ = smoke_report
        text = report.render()
        assert text.count("[PASS]") == len(report.checks) == 6
        assert text.endswith("result: PASS")


class TestSoakGuards:
    def test_rejects_too_short_run(self):
        with pytest.raises(ValueError, match="seconds must be >="):
            run_soak(seconds=60)

    def test_no_kills_fails_recovery_check(self):
        # A soak that never kills proves nothing about recovery: the
        # recovery_telemetry_counted verdict must fail, not vacuously pass.
        report = run_soak(seconds=600, num_machines=2, kill_period=4000,
                          outage_seconds=0, telemetry=False,
                          config=soak_config(specstore_snapshot_interval=300))
        assert report.kill_ticks == ()
        failed = [c.name for c in report.checks if not c.passed]
        assert "recovery_telemetry_counted" in failed
        assert report.passed is False

    def test_failed_check_renders_fail(self):
        check = SoakCheck("example", False, "it broke")
        assert check.passed is False

    def test_telemetry_scrapes_recovery_counters(self):
        obs = Observability()
        report = run_soak(seconds=600, num_machines=2, kill_period=250,
                          outage_seconds=5, obs=obs, telemetry=True,
                          config=soak_config(specstore_snapshot_interval=300))
        assert report.restarts == 2
        from repro.obs.timeseries import KIND_COUNTER

        series = obs.timeseries.series(KIND_COUNTER, "aggregator_restarts")
        assert series, "aggregator_restarts never scraped into the TSDB"
