"""Unit tests for repro.core.specstore (durable WAL + snapshot store).

The contract under test is byte-identical recovery: a
:class:`DurableSpecStore` replayed after a crash must reconstruct the
aggregator's learned state — published specs, in-period Welford
accumulators, refresh clock, ingest totals — and the endpoint's dedup
watermark exactly, hex-float for hex-float.  The end-to-end version of
the same contract (whole pipeline runs with kill schedules vs without)
lives in tests/test_durability.py.
"""

from __future__ import annotations

import json

import pytest

from repro.core.aggregator import CpiAggregator
from repro.core.config import CpiConfig
from repro.core.samplebatch import SampleColumns
from repro.core.specstore import (SNAPSHOT_FILENAME, SPECSTORE_FORMAT_VERSION,
                                  WAL_FILENAME, AggregatorHost,
                                  DurableSpecStore)
from repro.faults.profile import FAULT_PROFILES
from repro.faults.retry import AggregatorEndpoint, SampleBatch
from repro.obs import Observability
from tests.conftest import make_sample, make_spec


def _config(**overrides) -> CpiConfig:
    """A config whose thresholds a handful of samples can clear."""
    defaults = dict(spec_refresh_period=600, min_tasks_for_spec=2,
                    min_samples_per_task=2, specstore_snapshot_interval=900)
    defaults.update(overrides)
    return CpiConfig(**defaults)


def _window(t: int, n: int = 6) -> list:
    """One closed sampling window: ``n`` plausible samples at tick ``t``."""
    return [make_sample(jobname="svc", t=t, cpu_usage=0.5 + 0.01 * i,
                        cpi=1.0 + 0.05 * i, taskname=f"svc/{i % 3}")
            for i in range(n)]


def _canon(state: dict) -> list:
    """Hex-canonical form of an ``export_state`` dict."""
    return [
        [(s["jobname"], s["platforminfo"], s["num_samples"],
          float(s["cpu_usage_mean"]).hex(), float(s["cpi_mean"]).hex(),
          float(s["cpi_stddev"]).hex()) for s in state["specs"]],
        [(c["jobname"], c["platforminfo"], c["count"],
          float(c["mean"]).hex(), float(c["m2"]).hex(),
          float(c["usage_sum"]).hex(), sorted(c["samples_per_task"].items()))
         for c in state["current"]],
        state["last_refresh"], state["total_ingested"], state["total_rejected"],
    ]


def make_host(config=None, profile=None, obs=None,
              fault_seed: int = 1) -> AggregatorHost:
    config = config or _config()
    profile = profile or FAULT_PROFILES["none"]
    aggregator = CpiAggregator(config, obs=obs)
    return AggregatorHost(aggregator, profile, fault_seed, config, obs=obs)


def _feed(host: AggregatorHost, seconds: int, period: int = 60) -> None:
    """Pump the host tick-by-tick, closing one window per ``period``."""
    for t in range(1, seconds + 1):
        host.pump(t)
        if t % period == 0 and host.is_up:
            samples = _window(t)
            host.ingest_columns(t, SampleColumns.from_samples(samples),
                                samples=samples)
            host.maybe_recompute(t)


class TestWalReplay:
    def test_recover_is_byte_identical(self):
        host = make_host()
        host.set_spec(make_spec(jobname="warm", cpi_mean=1.7))
        _feed(host, 900)
        assert host.store.wal_records > 0
        recovered = host.store.recover(host.config)
        assert _canon(recovered.aggregator) == _canon(
            host.aggregator.export_state())
        assert recovered.replayed_records == host.store.wal_records

    def test_recovery_replays_rejections_exactly(self):
        # Quarantined samples live in the WAL too; replay re-rejects them
        # silently, so total_rejected reconstructs without double counting.
        host = make_host()
        bad = make_sample(jobname="svc", t=60, cpi=float("nan"))
        host.ingest_columns(
            60, SampleColumns.from_samples([bad] + _window(60)))
        assert host.aggregator.total_samples_rejected == 1
        recovered = host.store.recover(host.config)
        assert recovered.aggregator["total_rejected"] == 1
        assert _canon(recovered.aggregator) == _canon(
            host.aggregator.export_state())

    def test_wire_records_rebuild_dedup_watermark(self):
        store = DurableSpecStore()
        config = _config()
        live = CpiAggregator(config)
        for i in range(3):
            batch = SampleBatch(batch_id=f"m0/{i}", machine="m0",
                                sent_at=60 * (i + 1),
                                samples=tuple(_window(60 * (i + 1), n=2)))
            store.log_wire_batch(batch.sent_at, batch)
            for sample in batch.samples:
                live.ingest(sample)
        recovered = store.recover(config)
        assert recovered.endpoint["seen"] == ["m0/0", "m0/1", "m0/2"]
        assert recovered.endpoint["received"] == 3
        assert _canon(recovered.aggregator) == _canon(live.export_state())

    def test_unknown_op_raises(self):
        store = DurableSpecStore()
        store.append({"op": "frobnicate"})
        with pytest.raises(ValueError, match="unknown WAL op"):
            store.recover(_config())

    def test_snapshot_version_mismatch_raises(self):
        store = DurableSpecStore()
        host = make_host()
        _feed(host, 120)
        host.store.take_snapshot(120, host.aggregator.export_state(),
                                 {"seen": [], "received": 0, "duplicates": 0})
        host.store._snapshot["version"] = SPECSTORE_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="snapshot version"):
            host.store.recover(host.config)
        del store


class TestSnapshotCompaction:
    def test_snapshot_compacts_wal_and_recovery_still_exact(self):
        config = _config(specstore_snapshot_interval=300)
        host = make_host(config=config)
        _feed(host, 1000)
        assert host.store.snapshots_taken == 3        # t = 300, 600, 900
        # Only the records since the last snapshot remain in the WAL.
        assert host.store.wal_records <= 1000 // 300 + 2
        recovered = host.store.recover(config)
        assert _canon(recovered.aggregator) == _canon(
            host.aggregator.export_state())

    def test_snapshot_counts_compactions(self):
        obs = Observability()
        config = _config(specstore_snapshot_interval=120)
        host = make_host(config=config, obs=obs)
        _feed(host, 360)
        assert obs.metrics.total("snapshot_compactions") == 3
        assert obs.metrics.total("wal_records_appended") > 0

    def test_boundary_during_outage_fires_after_restore(self):
        # A snapshot boundary that lands while the service is down is
        # deferred to the first up tick, not skipped for a whole interval.
        config = _config(specstore_snapshot_interval=100)
        profile = FAULT_PROFILES["none"].with_overrides(
            aggregator_kill_ticks=(100,), aggregator_outage_seconds=7)
        host = make_host(config=config, profile=profile)
        for t in range(1, 105):
            host.pump(t)
        assert host.store.snapshots_taken == 0        # still down at 104
        for t in range(105, 111):
            host.pump(t)
        assert host.restarts == 1
        assert host.store.snapshots_taken == 1        # fired at t=107


class TestDiskMirror:
    def test_attach_load_round_trip(self, tmp_path):
        config = _config(specstore_snapshot_interval=300)
        host = make_host(config=config)
        host.store.attach_disk(tmp_path)
        host.set_spec(make_spec(jobname="warm"))
        _feed(host, 700)
        host.store.close()
        assert (tmp_path / WAL_FILENAME).exists()
        assert (tmp_path / SNAPSHOT_FILENAME).exists()
        assert not (tmp_path / (SNAPSHOT_FILENAME + ".tmp")).exists()

        reloaded = DurableSpecStore.load(tmp_path)
        assert reloaded.wal_records == host.store.wal_records
        assert _canon(reloaded.recover(config).aggregator) == _canon(
            host.aggregator.export_state())
        reloaded.close()

    def test_torn_tail_dropped_counted_and_rewritten(self, tmp_path):
        host = make_host()
        host.store.attach_disk(tmp_path)
        _feed(host, 240)
        host.store.close()
        before = host.store.wal_records
        with open(tmp_path / WAL_FILENAME, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 999, "op": "ing')   # interrupted append

        obs = Observability()
        reloaded = DurableSpecStore.load(tmp_path, obs=obs)
        assert reloaded.torn_tail_records == 1
        assert reloaded.wal_records == before
        assert obs.metrics.total("wal_torn_tail") == 1
        assert _canon(reloaded.recover(host.config).aggregator) == _canon(
            host.aggregator.export_state())
        reloaded.close()

        # attach_disk rewrote the WAL: a second load sees no torn tail.
        again = DurableSpecStore.load(tmp_path)
        assert again.torn_tail_records == 0
        assert again.wal_records == before
        again.close()

    def test_corrupt_record_mid_file_raises(self, tmp_path):
        host = make_host()
        host.store.attach_disk(tmp_path)
        _feed(host, 240)
        host.store.close()
        lines = (tmp_path / WAL_FILENAME).read_text().splitlines()
        assert len(lines) >= 3
        lines[1] = '{"seq": 1, "op": bro'
        (tmp_path / WAL_FILENAME).write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=":2:.*corrupt WAL record"):
            DurableSpecStore.load(tmp_path)

    def test_load_rejects_future_snapshot_version(self, tmp_path):
        host = make_host()
        _feed(host, 400)
        host.snapshot(400)
        host.store.attach_disk(tmp_path)
        host.store.close()
        snapshot = json.loads((tmp_path / SNAPSHOT_FILENAME).read_text())
        snapshot["version"] = SPECSTORE_FORMAT_VERSION + 1
        (tmp_path / SNAPSHOT_FILENAME).write_text(json.dumps(snapshot))
        with pytest.raises(ValueError, match="snapshot version"):
            DurableSpecStore.load(tmp_path)

    def test_attach_after_warm_start_loses_nothing(self, tmp_path):
        # Bootstrap specs logged before the disk attach must still land.
        host = make_host()
        host.set_spec(make_spec(jobname="early", cpi_mean=2.2))
        host.store.attach_disk(tmp_path)
        host.store.close()
        reloaded = DurableSpecStore.load(tmp_path)
        recovered = reloaded.recover(host.config)
        assert any(s["jobname"] == "early" for s in
                   recovered.aggregator["specs"])
        reloaded.close()


class TestAggregatorHost:
    def test_zero_outage_kill_is_invisible(self):
        """Crash + same-tick restore ends byte-identical to no kill."""
        baseline = make_host()
        _feed(baseline, 900)
        killed = make_host(profile=FAULT_PROFILES["none"].with_overrides(
            aggregator_kill_ticks=(300, 600)))
        _feed(killed, 900)
        assert killed.crashes == 2 and killed.restarts == 2
        assert killed.records_replayed > 0
        assert _canon(killed.aggregator.export_state()) == _canon(
            baseline.aggregator.export_state())

    def test_outage_gates_endpoint_until_restore(self):
        obs = Observability()
        profile = FAULT_PROFILES["none"].with_overrides(
            aggregator_kill_ticks=(100,), aggregator_outage_seconds=10)
        host = make_host(profile=profile, obs=obs)
        acks = []
        endpoint = AggregatorEndpoint(
            ingest=host.aggregator.ingest, ack=lambda t, a: acks.append(a),
            obs=obs, gate=host.accepting, batch_sink=host.ingest_wire_batch)
        host.bind_endpoint(endpoint)
        batch = SampleBatch(batch_id="m0/0", machine="m0", sent_at=100,
                            samples=tuple(_window(100, n=2)))
        for t in range(1, 101):
            host.pump(t)
        assert not host.is_up
        endpoint.receive(100, batch)                  # refused: down
        assert endpoint.batches_refused == 1
        assert acks == [] and host.aggregator.total_samples_ingested == 0
        assert obs.metrics.total("aggregator_batches_refused") == 1

        for t in range(101, 115):
            host.pump(t)
        assert host.is_up and host.restarts == 1
        endpoint.receive(114, batch)                  # redelivery lands
        assert len(acks) == 1
        assert host.aggregator.total_samples_ingested == 2

    def test_maybe_recompute_suppressed_while_down(self):
        profile = FAULT_PROFILES["none"].with_overrides(
            aggregator_kill_ticks=(50,), aggregator_outage_seconds=30)
        host = make_host(profile=profile)
        for t in range(1, 61):
            host.pump(t)
        assert host.maybe_recompute(60) is None       # down: publish nothing
        for t in range(61, 90):
            host.pump(t)
        assert host.maybe_recompute(89) is not None   # back up: fires

    def test_restore_counts_telemetry(self):
        obs = Observability()
        host = make_host(obs=obs, profile=FAULT_PROFILES["none"]
                         .with_overrides(aggregator_kill_ticks=(120,)))
        _feed(host, 300)
        assert obs.metrics.total("aggregator_crashes") == 1
        assert obs.metrics.total("aggregator_restarts") == 1
        assert obs.metrics.total("wal_replayed_records") == (
            host.records_replayed) > 0

    def test_replica_tracks_schedule_without_state_changes(self):
        profile = FAULT_PROFILES["none"].with_overrides(
            aggregator_kill_ticks=(100,), aggregator_outage_seconds=20)
        replica = make_host(profile=profile)
        replica.become_replica()
        down_ticks = []
        for t in range(1, 301):
            replica.pump(t)
            if not replica.is_up:
                down_ticks.append(t)
        # The replica's gate follows the canonical schedule — down from
        # the kill tick until the outage ends — with no writes of its own.
        assert down_ticks == list(range(100, 120))
        assert replica.crashes == 1 and replica.restarts == 1
        assert replica.store.wal_records == 0
        assert replica.store.snapshots_taken == 0
        assert replica.aggregator.export_state()["total_ingested"] == 0

    def test_random_crash_draws_match_across_hosts(self):
        # Identical (profile, fault_seed) => identical Bernoulli schedule,
        # which is what keeps replica gates aligned with the coordinator.
        profile = FAULT_PROFILES["none"].with_overrides(
            aggregator_crash_rate=0.01)
        a = make_host(profile=profile, fault_seed=7)
        b = make_host(profile=profile, fault_seed=7)
        b.become_replica()
        for t in range(1, 2001):
            a.pump(t)
            b.pump(t)
        assert a.crashes > 0
        assert a.crashes == b.crashes

    def test_reference_drift_exact_then_detects_divergence(self):
        host = make_host()
        _feed(host, 600)
        host.attach_reference()
        _feed(host, 1200)
        drift = host.reference_drift()
        assert drift["exact"] is True
        assert drift["accumulators_compared"] > 0
        # An unlogged mutation is exactly what drift detection is for.
        host.aggregator.ingest(make_sample(jobname="rogue", t=1260))
        assert host.reference_drift()["exact"] is False

    def test_reference_drift_requires_attachment(self):
        host = make_host()
        with pytest.raises(RuntimeError, match="attach_reference"):
            host.reference_drift()
