"""Unit tests for repro.core.storage (JSONL persistence)."""

import json

import pytest

from repro.core.storage import (
    load_forensics,
    load_samples,
    load_specs,
    sample_from_dict,
    sample_to_dict,
    save_forensics,
    save_samples,
    save_specs,
    spec_from_dict,
    spec_to_dict,
)
from tests.conftest import make_sample, make_spec
from tests.test_forensics import make_incident
from repro.core.forensics import ForensicsStore


class TestSpecRoundtrip:
    def test_dict_roundtrip(self):
        spec = make_spec(jobname="search", cpi_mean=1.8, cpi_stddev=0.16)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_file_roundtrip(self, tmp_path):
        specs = [make_spec(jobname=f"job-{i}", cpi_mean=1.0 + i * 0.1)
                 for i in range(5)]
        path = tmp_path / "specs.jsonl"
        assert save_specs(path, specs) == 5
        assert load_specs(path) == specs

    def test_corrupt_keys_detected(self):
        with pytest.raises(ValueError, match="bad spec record"):
            spec_from_dict({"jobname": "x"})

    def test_corrupt_line_reports_location(self, tmp_path):
        # Mid-file corruption is damage, not a torn tail: it raises with
        # the path and line number.
        path = tmp_path / "specs.jsonl"
        good = json.dumps(spec_to_dict(make_spec()))
        path.write_text(good + "\n{broken\n" + good + "\n")
        with pytest.raises(ValueError, match=":2:"):
            load_specs(path)

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        # A final line that fails to parse is the residue of an
        # interrupted write: dropped with a counted warning, not a crash.
        from repro.obs import Observability

        path = tmp_path / "specs.jsonl"
        specs = [make_spec(jobname=f"job-{i}") for i in range(3)]
        save_specs(path, specs)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"jobname": "torn", "platform')
        obs = Observability()
        assert load_specs(path, obs=obs) == specs
        assert obs.metrics.total("storage_torn_tail") == 1

    def test_torn_tail_with_bad_schema_still_raises(self, tmp_path):
        # Valid JSON with the wrong keys is a schema violation everywhere,
        # including on the final line — only partial JSON is torn.
        path = tmp_path / "specs.jsonl"
        save_specs(path, [make_spec()])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"nope": 1}\n')
        with pytest.raises(ValueError, match="bad spec record"):
            load_specs(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "specs.jsonl"
        path.write_text("\n" + json.dumps(spec_to_dict(make_spec())) + "\n\n")
        assert len(load_specs(path)) == 1


class TestSampleRoundtrip:
    def test_dict_roundtrip(self):
        sample = make_sample(cpi=2.5, cpu_usage=1.3, taskname="j/7")
        assert sample_from_dict(sample_to_dict(sample)) == sample

    def test_file_roundtrip(self, tmp_path):
        samples = [make_sample(t=60 * i, cpi=1.0 + 0.01 * i)
                   for i in range(20)]
        path = tmp_path / "samples.jsonl"
        assert save_samples(path, samples) == 20
        assert load_samples(path) == samples

    def test_bad_keys(self):
        with pytest.raises(ValueError, match="bad sample record"):
            sample_from_dict({"cpi": 1.0})

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        from repro.obs import Observability

        samples = [make_sample(t=60 * i) for i in range(4)]
        path = tmp_path / "samples.jsonl"
        save_samples(path, samples)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"jobname": "torn"')
        obs = Observability()
        assert load_samples(path, obs=obs) == samples
        assert obs.metrics.total("storage_torn_tail") == 1


class TestForensicsRoundtrip:
    def test_roundtrip(self, tmp_path):
        store = ForensicsStore()
        store.record(make_incident(1, victim_job="search"))
        store.record(make_incident(2, victim_job="ads",
                                   antagonist_job="mapreduce"))
        path = tmp_path / "incidents.jsonl"
        assert save_forensics(path, store) == 2
        loaded = load_forensics(path)
        assert len(loaded) == 2
        assert loaded.records == store.records

    def test_loaded_store_queryable(self, tmp_path):
        store = ForensicsStore()
        for i in range(4):
            store.record(make_incident(i, victim_job="search"))
        path = tmp_path / "incidents.jsonl"
        save_forensics(path, store)
        loaded = load_forensics(path)
        assert loaded.top_antagonists() == store.top_antagonists()
        assert len(loaded.query().where(victim_job="search").run()) == 4

    def test_bad_record_keys(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        path.write_text('{"nope": 1}\n')
        with pytest.raises(ValueError, match="bad incident record"):
            load_forensics(path)


class TestWarmStartWorkflow:
    def test_specs_survive_process_boundary(self, tmp_path):
        """The paper's warm start: yesterday's specs bootstrap today's run."""
        from repro.core.aggregator import CpiAggregator

        yesterday = CpiAggregator()
        yesterday.set_spec(make_spec(jobname="search", cpi_mean=1.8))
        path = tmp_path / "history.jsonl"
        save_specs(path, yesterday.specs().values())

        today = CpiAggregator()
        for spec in load_specs(path):
            today.set_spec(spec)
        assert today.spec_for("search", "westmere-2.6").cpi_mean == 1.8
