"""Unit tests for repro.cluster.task and repro.cluster.job."""

import pytest

from repro.cluster.job import Job, JobSpec
from repro.cluster.task import (
    PriorityBand,
    SchedulingClass,
    TaskState,
    WorkloadModel,
)
from repro.testing import ScriptedWorkload, make_scripted_job


def simple_spec(name="job", num_tasks=3,
                scheduling_class=SchedulingClass.LATENCY_SENSITIVE,
                priority_band=PriorityBand.PRODUCTION,
                protection_eligible=None):
    return JobSpec(
        name=name,
        num_tasks=num_tasks,
        scheduling_class=scheduling_class,
        priority_band=priority_band,
        cpu_limit_per_task=2.0,
        workload_factory=lambda i: ScriptedWorkload([1.0]),
        protection_eligible=protection_eligible,
    )


class TestSchedulingClass:
    def test_batch_tiers(self):
        assert SchedulingClass.BATCH.is_batch
        assert SchedulingClass.BEST_EFFORT.is_batch
        assert not SchedulingClass.LATENCY_SENSITIVE.is_batch


class TestJobSpecValidation:
    def test_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            simple_spec(name="")

    def test_slash_in_name(self):
        with pytest.raises(ValueError, match="'/'"):
            simple_spec(name="a/b")

    def test_zero_tasks(self):
        with pytest.raises(ValueError, match="num_tasks"):
            simple_spec(num_tasks=0)

    def test_bad_cpu_limit(self):
        with pytest.raises(ValueError, match="cpu_limit"):
            JobSpec(name="j", num_tasks=1,
                    scheduling_class=SchedulingClass.BATCH,
                    priority_band=PriorityBand.NONPRODUCTION,
                    cpu_limit_per_task=0.0,
                    workload_factory=lambda i: ScriptedWorkload([1.0]))


class TestJob:
    def test_task_names_and_count(self):
        job = Job(simple_spec(name="websearch", num_tasks=3))
        assert len(job) == 3
        assert [t.name for t in job] == ["websearch/0", "websearch/1",
                                         "websearch/2"]

    def test_tasks_start_pending(self):
        job = Job(simple_spec())
        assert all(t.state is TaskState.PENDING for t in job)
        assert len(job.pending_tasks()) == 3
        assert job.running_tasks() == []

    def test_each_task_gets_own_workload_instance(self):
        job = Job(simple_spec())
        workloads = {id(t.workload) for t in job}
        assert len(workloads) == 3

    def test_protection_defaults(self):
        ls = Job(simple_spec(scheduling_class=SchedulingClass.LATENCY_SENSITIVE))
        batch = Job(simple_spec(scheduling_class=SchedulingClass.BATCH))
        assert ls.protection_eligible
        assert not batch.protection_eligible

    def test_protection_explicit_override(self):
        # "or because it is explicitly marked as eligible"
        batch = Job(simple_spec(scheduling_class=SchedulingClass.BATCH,
                                protection_eligible=True))
        assert batch.protection_eligible
        ls = Job(simple_spec(protection_eligible=False))
        assert not ls.protection_eligible

    def test_class_and_band_passthrough(self):
        job = Job(simple_spec(scheduling_class=SchedulingClass.BEST_EFFORT,
                              priority_band=PriorityBand.NONPRODUCTION))
        task = job.tasks[0]
        assert task.scheduling_class is SchedulingClass.BEST_EFFORT
        assert task.priority_band is PriorityBand.NONPRODUCTION
        assert not task.is_latency_sensitive


class TestTaskLifecycle:
    def test_place_and_stop(self):
        job = make_scripted_job("j", [1.0])
        task = job.tasks[0]
        task.mark_running("m0")
        assert task.state is TaskState.RUNNING
        assert task.machine_name == "m0"
        task.mark_stopped(TaskState.EXITED, reason="gave up")
        assert task.state is TaskState.EXITED
        assert task.machine_name is None
        assert task.exit_reason == "gave up"

    def test_cannot_place_running_task(self):
        job = make_scripted_job("j", [1.0])
        task = job.tasks[0]
        task.mark_running("m0")
        with pytest.raises(ValueError, match="cannot place"):
            task.mark_running("m1")

    def test_replace_after_preemption(self):
        job = make_scripted_job("j", [1.0])
        task = job.tasks[0]
        task.mark_running("m0")
        task.mark_stopped(TaskState.PREEMPTED)
        task.mark_running("m1")  # replacement is allowed
        assert task.machine_name == "m1"

    def test_running_is_not_a_stop_state(self):
        job = make_scripted_job("j", [1.0])
        task = job.tasks[0]
        task.mark_running("m0")
        with pytest.raises(ValueError, match="not a stopped state"):
            task.mark_stopped(TaskState.RUNNING)

    def test_negative_index_rejected(self):
        from repro.cluster.task import Task
        job = make_scripted_job("j", [1.0])
        with pytest.raises(ValueError, match="index"):
            Task(job=job, index=-1, workload=ScriptedWorkload([1.0]),
                 cpu_limit=1.0)


class TestWorkloadProtocol:
    def test_scripted_workload_satisfies_protocol(self):
        assert isinstance(ScriptedWorkload([1.0]), WorkloadModel)
