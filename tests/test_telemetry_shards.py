"""Golden-parity tests for the fleet telemetry plane under sharding.

The telemetry plane's acceptance contract: the scraped time series, the
alert history, and the rendered fleet console must be *byte-identical*
between a single-process run and a sharded run at any worker count.  The
coordinator scrapes a sum of portable per-worker registry states at every
barrier; these tests pin that the sum equals the single-process registry
scrape-for-scrape, clean and under injected chaos.

Also here: the chaos-alert smoke CI leans on — the ``heavy`` fault profile
must deterministically fire ``agent_crash_storm``.
"""

from __future__ import annotations

from repro.cluster.shards import run_sharded
from repro.core.config import CpiConfig
from repro.experiments.chaos import chaos_scenario
from repro.experiments.scenarios import demo_scenario, scale_scenario

#: Mirrors tests/test_shards.py: small enough to run repeatedly, big enough
#: that 2- and 4-worker plans split jobs and machines across processes.
SCALE_KWARGS = dict(num_machines=6, seed=11, num_service_jobs=2,
                    num_batch_jobs=2, tasks_per_job=6,
                    config=CpiConfig(spec_refresh_period=600,
                                     min_samples_per_task=5),
                    telemetry=True)

CHAOS_KWARGS = dict(seed=0, num_machines=4, fault_profile="moderate",
                    fault_seed=1, telemetry=True)


def _surfaces(obs, console) -> dict[str, str]:
    """The three byte-parity surfaces, as strings."""
    return {
        "timeseries": "\n".join(obs.timeseries.dump_lines()),
        "alerts": "\n".join(obs.alerts.dump_lines()),
        "console": console.render() + "\n" + console.to_json(),
    }


def _single(builder, kwargs, seconds: int) -> dict[str, str]:
    scenario = builder(**kwargs)
    scenario.simulation.run(seconds)
    pipeline = scenario.pipeline
    return _surfaces(pipeline.obs, pipeline.fleet_console())


def _sharded(builder, kwargs, seconds: int, jobs: int) -> dict[str, str]:
    result = run_sharded(builder, kwargs, seconds=seconds, jobs=jobs)
    return _surfaces(result.pipeline.obs, result.fleet_console())


def test_telemetry_clean_parity():
    """Clean fleet: series, alerts, console identical at 1/2/4 shards."""
    seconds = 20 * 60
    baseline = _single(scale_scenario, SCALE_KWARGS, seconds)
    assert baseline["timeseries"]            # scrapes actually happened
    assert "samples_ingested" in baseline["timeseries"]
    assert "fleet_machines" in baseline["timeseries"]
    for jobs in (1, 2, 4):
        assert _sharded(scale_scenario, SCALE_KWARGS, seconds,
                        jobs) == baseline, f"jobs={jobs}"


def test_telemetry_chaos_parity():
    """Moderate chaos: faults, crashes, and quarantines cross the barrier
    wire as registry states and still scrape byte-identically."""
    seconds = 3600
    baseline = _single(chaos_scenario, CHAOS_KWARGS, seconds)
    assert "transport_faults" in baseline["timeseries"]
    assert "faults injected" in baseline["console"]
    for jobs in (1, 2, 4):
        assert _sharded(chaos_scenario, CHAOS_KWARGS, seconds,
                        jobs) == baseline, f"jobs={jobs}"


def test_heavy_chaos_fires_crash_storm_alert():
    """The CI chaos smoke's contract: heavy chaos must page somebody."""
    scenario = chaos_scenario(seed=0, num_machines=4, fault_profile="heavy",
                              fault_seed=1, telemetry=True)
    scenario.simulation.run(1800)
    engine = scenario.pipeline.obs.alerts
    assert engine.fired_counts().get("agent_crash_storm", 0) >= 1
    fired = [r for r in engine.history if r["event"] == "alert_fired"]
    assert fired[0]["severity"] == "critical"


def test_clean_demo_stays_green():
    """No alert may fire on the clean quickstart — green-fleet guarantee."""
    scenario = demo_scenario(telemetry=True)
    scenario.simulation.run(3600)
    assert scenario.pipeline.obs.alerts.history == []


def test_telemetry_off_records_nothing():
    """Without the flag the plane is absent: no TSDB, no alerts, no cost."""
    scenario = demo_scenario()
    scenario.simulation.run(600)
    obs = scenario.pipeline.obs
    assert obs.timeseries is None
    assert obs.alerts is None
    assert not obs.telemetry_enabled
