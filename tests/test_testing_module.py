"""Unit tests for repro.testing (the deterministic building blocks)."""

import pytest

from repro.cluster.task import SchedulingClass, WorkloadModel
from repro.testing import (
    NOISY_NEIGHBOR_PROFILE,
    QUIET_PROFILE,
    SENSITIVE_PROFILE,
    ScriptedWorkload,
    make_quiet_machine,
    make_scripted_job,
)


class TestScriptedWorkload:
    def test_script_followed(self):
        workload = ScriptedWorkload([1.0, 2.0, 3.0])
        assert [workload.cpu_demand(t) for t in range(3)] == [1.0, 2.0, 3.0]

    def test_repeat(self):
        workload = ScriptedWorkload([1.0, 2.0], repeat=True)
        assert workload.cpu_demand(2) == 1.0
        assert workload.cpu_demand(5) == 2.0

    def test_hold_last(self):
        workload = ScriptedWorkload([1.0, 2.0], repeat=False)
        assert workload.cpu_demand(100) == 2.0

    def test_tick_log(self):
        workload = ScriptedWorkload([1.0])
        workload.on_tick(0, 0.5, False)
        workload.on_tick(1, 0.7, True)
        assert workload.ticks == [(0, 0.5, False), (1, 0.7, True)]

    def test_exit_and_complete(self):
        exiting = ScriptedWorkload([1.0], exit_at=2)
        assert exiting.on_tick(1, 1.0, False) is None
        assert exiting.on_tick(2, 1.0, False) == "exited"
        completing = ScriptedWorkload([1.0], complete_at=0)
        assert completing.on_tick(0, 1.0, False) == "completed"

    def test_protocol_conformance(self):
        assert isinstance(ScriptedWorkload([1.0]), WorkloadModel)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            ScriptedWorkload([])
        with pytest.raises(ValueError, match=">= 0"):
            ScriptedWorkload([-1.0])


class TestProfiles:
    def test_quiet_is_inert(self):
        assert QUIET_PROFILE.cache_sensitivity == 0.0
        assert QUIET_PROFILE.cache_mib_per_cpu < 0.1

    def test_sensitive_feels_more_than_it_exerts(self):
        assert SENSITIVE_PROFILE.cache_sensitivity >= 0.8
        assert (SENSITIVE_PROFILE.cache_mib_per_cpu
                < NOISY_NEIGHBOR_PROFILE.cache_mib_per_cpu / 4)

    def test_noisy_neighbor_exerts_more_than_it_feels(self):
        assert NOISY_NEIGHBOR_PROFILE.cache_mib_per_cpu >= 4.0
        assert NOISY_NEIGHBOR_PROFILE.cache_sensitivity <= 0.2


class TestFactories:
    def test_quiet_machine_is_noiseless(self):
        machine = make_quiet_machine()
        assert machine.cpi_noise_sigma == 0.0

    def test_scripted_job_properties(self):
        job = make_scripted_job("j", [1.0], num_tasks=2,
                                scheduling_class=SchedulingClass.BATCH,
                                base_cpi=1.5)
        assert len(job) == 2
        assert job.scheduling_class is SchedulingClass.BATCH
        assert job.tasks[0].workload.base_cpi() == 1.5

    def test_scripted_job_deterministic_on_machine(self):
        def run():
            machine = make_quiet_machine()
            job = make_scripted_job("j", [1.0, 2.0], base_cpi=1.2)
            machine.place(job.tasks[0])
            return [machine.tick(t).cpis["j/0"] for t in range(4)]

        assert run() == run()
