"""Unit tests for repro.core.throttle (hard-capping + adaptive capping)."""

import pytest

from repro.cluster.task import SchedulingClass
from repro.core.config import CpiConfig
from repro.core.throttle import AdaptiveCapController, ThrottleController
from repro.testing import make_scripted_job


def batch_task(name="b", scheduling_class=SchedulingClass.BATCH):
    return make_scripted_job(name, [1.0], cpu_limit=8.0,
                             scheduling_class=scheduling_class).tasks[0]


class TestQuotaSelection:
    def test_batch_gets_point_one(self):
        controller = ThrottleController()
        assert controller.quota_for(batch_task()) == pytest.approx(0.1)

    def test_best_effort_gets_point_oh_one(self):
        controller = ThrottleController()
        task = batch_task(scheduling_class=SchedulingClass.BEST_EFFORT)
        assert controller.quota_for(task) == pytest.approx(0.01)


class TestCapping:
    def test_cap_applies_to_cgroup(self):
        controller = ThrottleController()
        task = batch_task()
        action = controller.cap(task, now=100, victim_taskname="v/0",
                                correlation=0.5)
        assert task.cgroup.is_capped(100)
        assert task.cgroup.allowed_usage(8.0, t=100) == pytest.approx(0.1)
        assert action.expires_at == 100 + 300  # 5 minutes
        assert action.victim_taskname == "v/0"
        assert action.correlation == 0.5

    def test_cap_duration_from_config(self):
        controller = ThrottleController(CpiConfig(hardcap_duration=60))
        task = batch_task()
        action = controller.cap(task, now=0)
        assert action.expires_at == 60
        assert not task.cgroup.is_capped(60)

    def test_quota_override(self):
        controller = ThrottleController()
        task = batch_task()
        action = controller.cap(task, now=0, quota=0.05)
        assert action.quota == 0.05
        assert task.cgroup.allowed_usage(8.0, t=0) == pytest.approx(0.05)

    def test_release(self):
        controller = ThrottleController()
        task = batch_task()
        controller.cap(task, now=0)
        controller.release(task)
        assert not task.cgroup.is_capped(1)

    def test_audit_log_and_active_caps(self):
        controller = ThrottleController()
        t1, t2 = batch_task("b1"), batch_task("b2")
        controller.cap(t1, now=0)
        controller.cap(t2, now=100)
        assert len(controller.actions) == 2
        active = controller.active_caps(now=200)
        assert [a.taskname for a in active] == ["b1/0", "b2/0"]
        active = controller.active_caps(now=350)
        assert [a.taskname for a in active] == ["b2/0"]


class TestAdaptiveCapping:
    def test_first_cap_uses_class_quota(self):
        controller = AdaptiveCapController()
        task = batch_task()
        action = controller.cap(task, now=0)
        assert action.quota == pytest.approx(0.1)

    def test_failure_halves_quota(self):
        controller = AdaptiveCapController()
        task = batch_task()
        controller.cap(task, now=0)
        next_quota = controller.report_outcome(task.name, victim_recovered=False)
        assert next_quota == pytest.approx(0.05)
        action = controller.cap(task, now=400)
        assert action.quota == pytest.approx(0.05)

    def test_quota_floor(self):
        controller = AdaptiveCapController(min_quota=0.01)
        task = batch_task()
        controller.cap(task, now=0)
        for _ in range(10):
            quota = controller.report_outcome(task.name, victim_recovered=False)
        assert quota == pytest.approx(0.01)

    def test_two_successes_double_quota(self):
        controller = AdaptiveCapController()
        task = batch_task()
        controller.cap(task, now=0)
        controller.report_outcome(task.name, True)
        quota = controller.report_outcome(task.name, True)
        assert quota == pytest.approx(0.2)

    def test_one_success_not_enough(self):
        controller = AdaptiveCapController()
        task = batch_task()
        controller.cap(task, now=0)
        quota = controller.report_outcome(task.name, True)
        assert quota == pytest.approx(0.1)

    def test_failure_resets_success_streak(self):
        controller = AdaptiveCapController()
        task = batch_task()
        controller.cap(task, now=0)
        controller.report_outcome(task.name, True)
        controller.report_outcome(task.name, False)   # halves to 0.05
        controller.report_outcome(task.name, True)
        quota = controller.report_outcome(task.name, True)  # doubles to 0.1
        assert quota == pytest.approx(0.1)

    def test_quota_ceiling(self):
        controller = AdaptiveCapController(max_quota=0.4)
        task = batch_task()
        controller.cap(task, now=0)
        for _ in range(10):
            controller.report_outcome(task.name, True)
        assert controller.current_quota(task.name) <= 0.4

    def test_unknown_task_raises(self):
        controller = AdaptiveCapController()
        with pytest.raises(KeyError, match="no adaptive state"):
            controller.report_outcome("ghost/0", True)

    def test_current_quota_unknown(self):
        assert AdaptiveCapController().current_quota("ghost/0") is None

    def test_validation(self):
        with pytest.raises(ValueError, match="min_quota"):
            AdaptiveCapController(min_quota=0.0)
        with pytest.raises(ValueError, match="max_quota"):
            AdaptiveCapController(min_quota=0.5, max_quota=0.1)
