"""Golden-parity tests: legacy vs vectorized tick engines.

The vector engine (and the cluster-fused fast path layered on top of it)
must be *bit-identical* to the scalar legacy engine — same CPI sample
stream, same incidents, same chaos precision/recall — for any seed.  These
tests pin that contract on the reference seeds, comparing floats by their
hex representation so "close enough" can never creep in.

The micro-tests at the bottom pin the numpy identities the vectorization
leans on (documented in ``docs/performance.md``); if a numpy upgrade ever
broke one of them, these fail before the end-to-end streams drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CpiConfig
from repro.cluster.fused import FusedFleet
from repro.experiments.chaos import chaos_sweep
from repro.experiments.scenarios import (build_cluster, populated_fleet,
                                         victim_antagonist_machine)
from repro.records import CpiSpec
from repro.workloads import AntagonistKind, make_antagonist_job_spec
from repro.workloads import make_batch_job_spec
from repro.workloads.services import make_service_job_spec

ENGINES = ("legacy", "vector")


def _hex(x) -> str:
    return float(x).hex()


def _canon_samples(samples) -> list[tuple]:
    """Byte-faithful canonical form of a CpiSample stream."""
    return [(s.jobname, s.platforminfo, s.timestamp, _hex(s.cpu_usage),
             _hex(s.cpi), s.taskname) for s in samples]


def _canon_incidents(incidents) -> list[tuple]:
    """Canonical incidents, minus the (per-process) incident_id."""
    return [(
        i.machine, i.time_seconds, i.victim_taskname, i.victim_jobname,
        _hex(i.victim_cpi), _hex(i.cpi_threshold),
        tuple((s.taskname, s.jobname, _hex(s.correlation))
              for s in i.suspects),
        i.decision.action.value,
        None if i.decision.target is None else i.decision.target.name,
        None if i.post_cpi is None else _hex(i.post_cpi),
        i.recovered,
    ) for i in incidents]


def _per_engine(monkeypatch, run):
    """Run ``run()`` once per engine (selected via REPRO_TICK_ENGINE)."""
    out = {}
    for engine in ENGINES:
        monkeypatch.setenv("REPRO_TICK_ENGINE", engine)
        out[engine] = run()
    return out


# -- end-to-end stream parity -------------------------------------------------


def test_fleet_sample_stream_parity(monkeypatch):
    """Same seed => byte-identical sample stream on a mixed fleet."""
    def run():
        scenario = populated_fleet(num_machines=4, seed=7)
        scenario.pipeline.log_samples = True
        scenario.simulation.run_minutes(20)
        return _canon_samples(scenario.pipeline.sample_log)

    streams = _per_engine(monkeypatch, run)
    assert len(streams["legacy"]) > 500  # not vacuously equal
    assert streams["legacy"] == streams["vector"]


def test_victim_antagonist_incident_parity(monkeypatch):
    """The canonical case study: identical samples AND incidents."""
    def run():
        scenario, _victim, _antagonist = victim_antagonist_machine(seed=5)
        scenario.pipeline.log_samples = True
        scenario.simulation.run_hours(2)
        return (_canon_samples(scenario.pipeline.sample_log),
                _canon_incidents(scenario.pipeline.all_incidents()))

    results = _per_engine(monkeypatch, run)
    samples, incidents = results["legacy"]
    assert len(incidents) > 0  # the case study must actually fire
    assert results["vector"] == (samples, incidents)


def test_moderate_fault_profile_parity(monkeypatch):
    """Parity holds under chaos: crashes, transport faults, quarantine."""
    def run():
        scenario = build_cluster(3, seed=9, config=CpiConfig(),
                                 fault_profile="moderate", fault_seed=7)
        scenario.submit(make_service_job_spec(
            "frontend", num_tasks=6, seed=21, base_cpi=1.0,
            cpu_limit_per_task=2.0))
        scenario.submit(make_batch_job_spec(
            "logs", num_tasks=3, seed=22, demand_level=0.5))
        scenario.submit(make_antagonist_job_spec(
            "video", AntagonistKind.VIDEO_PROCESSING, num_tasks=1,
            seed=23, demand_scale=1.4, cpu_limit_per_task=6.0))
        platform = next(
            iter(scenario.simulation.machines.values())).platform
        scenario.pipeline.bootstrap_specs([CpiSpec(
            jobname="frontend", platforminfo=platform.name,
            num_samples=10_000, cpu_usage_mean=1.0,
            cpi_mean=1.05, cpi_stddev=0.08)])
        scenario.pipeline.log_samples = True
        scenario.simulation.run_hours(1)
        return (_canon_samples(scenario.pipeline.sample_log),
                _canon_incidents(scenario.pipeline.all_incidents()),
                scenario.pipeline.faults.total_faults_injected)

    results = _per_engine(monkeypatch, run)
    _samples, _incidents, faults = results["legacy"]
    assert faults > 0  # the moderate profile must actually inject
    assert results["vector"] == results["legacy"]


def test_chaos_precision_recall_parity(monkeypatch):
    """The chaos experiment's headline numbers match across engines."""
    def run():
        result = chaos_sweep(profiles=("none", "moderate"),
                             num_machines=3, hours=1.0, seed=0,
                             fault_seed=1)
        return [(c.profile, _hex(c.precision), _hex(c.recall_vs_clean),
                 c.incidents, c.identified, c.true_identified,
                 c.faults_injected) for c in result.cells]

    results = _per_engine(monkeypatch, run)
    assert any(cell[3] > 0 for cell in results["legacy"])  # incidents fired
    assert results["legacy"] == results["vector"]


def test_fused_path_matches_per_machine_vector(monkeypatch):
    """Disabling cluster fusion must not change the vector stream at all."""
    def run():
        scenario = populated_fleet(num_machines=3, seed=13)
        scenario.pipeline.log_samples = True
        scenario.simulation.run_minutes(15)
        return _canon_samples(scenario.pipeline.sample_log)

    monkeypatch.setenv("REPRO_TICK_ENGINE", "vector")
    fused = run()
    monkeypatch.setattr(FusedFleet, "build",
                        classmethod(lambda cls, order: None))
    unfused = run()
    assert len(fused) > 300
    assert fused == unfused


# -- the numpy identities the vector engine relies on -------------------------


@pytest.mark.parametrize("seed", [0, 1, 12345])
def test_bulk_standard_normal_matches_scalar_draws(seed):
    """One rng.standard_normal(n) call == n scalar draws, bit-for-bit.

    This is the batched-RNG-order contract: the vector engine replaces the
    legacy per-task scalar draw loop with one bulk draw per machine-tick.
    """
    bulk = np.random.default_rng(seed).standard_normal(257)
    scalar_rng = np.random.default_rng(seed)
    scalars = [scalar_rng.standard_normal() for _ in range(257)]
    assert [v.hex() for v in bulk.tolist()] == [
        float(v).hex() for v in scalars]


@pytest.mark.parametrize("sigma", [0.03, 0.5, 1.7])
def test_sigma_times_standard_normal_matches_normal(sigma):
    """rng.normal(0, sigma) == sigma * rng.standard_normal(), bit-for-bit.

    numpy implements the former as exactly this product, which lets the
    noise path draw standard normals in bulk and scale afterwards.
    """
    a = np.random.default_rng(99)
    b = np.random.default_rng(99)
    for _ in range(1000):
        assert a.normal(0.0, sigma) == sigma * b.standard_normal()


def test_vector_exp_matches_scalar_exp():
    """np.exp over an array == np.exp per scalar (IEEE, same code path)."""
    values = np.random.default_rng(7).standard_normal(512) * 3.0
    batched = np.exp(values)
    assert [v.hex() for v in batched.tolist()] == [
        float(np.exp(v)).hex() for v in values.tolist()]
