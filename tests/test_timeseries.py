"""Unit tests for the simulated-time ring-buffer TSDB.

The TSDB is the telemetry plane's storage layer; these tests pin the
recording semantics the alert rules and the shard-parity contract rely on:
counters stored as per-scrape deltas, gauges as last-write values,
histograms as cumulative integer bucket counts (no float sum), bounded
ring-buffer memory, and the equivalence between scraping one live registry
and scraping the same state split across portable per-shard dumps.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry, export_state
from repro.obs.timeseries import (KIND_COUNTER, KIND_GAUGE,
                                  KIND_HISTOGRAM_BUCKET,
                                  KIND_HISTOGRAM_COUNT,
                                  SCRAPE_INTERVAL_GAUGE, RingSeries,
                                  TimeSeriesDB, format_le)


def _points(tsdb, kind, name, labels=None):
    found = tsdb.series(kind, name, labels)
    assert len(found) == 1, found
    return list(found[0].points)


# -- RingSeries ---------------------------------------------------------------


def test_ring_series_bounded_and_window_sum():
    series = RingSeries(KIND_COUNTER, "c", (), max_points=3)
    for t in (10, 70, 130, 190):
        series.append(t, 1.0)
    assert list(series.points) == [(70, 1.0), (130, 1.0), (190, 1.0)]
    assert series.last() == 1.0
    # window (190-120, 190]: points at 130 and 190 qualify, 70 does not.
    assert series.window_sum(190, 120) == 2.0
    assert series.window_sum(190, 10_000) == 3.0
    assert RingSeries(KIND_GAUGE, "g", (), max_points=2).last() is None


def test_format_le():
    assert format_le(float("inf")) == "+Inf"
    assert format_le(1.0) == "1"
    assert format_le(0.25) == "0.25"


# -- scrape semantics ---------------------------------------------------------


def test_counters_recorded_as_deltas():
    registry = MetricsRegistry()
    counter = registry.counter("samples_ingested")
    tsdb = TimeSeriesDB()
    counter.inc(5)
    tsdb.scrape_registry(10, registry)
    counter.inc(7)
    tsdb.scrape_registry(70, registry)
    tsdb.scrape_registry(130, registry)  # no change -> zero delta
    assert _points(tsdb, KIND_COUNTER, "samples_ingested") == [
        (10, 5.0), (70, 7.0), (130, 0.0)]
    assert tsdb.counter_increase("samples_ingested", 130, 120) == 7.0
    assert tsdb.counter_increase("samples_ingested", 130, 10_000) == 12.0


def test_gauges_recorded_last_write_and_summed_across_labels():
    registry = MetricsRegistry()
    registry.gauge("caps_active", machine="m0").set(2)
    registry.gauge("caps_active", machine="m1").set(1)
    tsdb = TimeSeriesDB()
    tsdb.scrape_registry(10, registry)
    registry.gauge("caps_active", machine="m0").set(0)
    tsdb.scrape_registry(70, registry)
    assert _points(tsdb, KIND_GAUGE, "caps_active", {"machine": "m0"}) == [
        (10, 2.0), (70, 0.0)]
    assert tsdb.gauge_last("caps_active") == 1.0          # fleet sum
    assert tsdb.gauge_last("caps_active", {"machine": "m1"}) == 1.0
    assert tsdb.gauge_last("nonexistent") is None


def test_histograms_recorded_as_cumulative_integer_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("victim_cpi", buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 1.7, 5.0):
        hist.observe(value)
    tsdb = TimeSeriesDB()
    tsdb.scrape_registry(10, registry)
    assert _points(tsdb, KIND_HISTOGRAM_BUCKET, "victim_cpi",
                   {"le": "1"}) == [(10, 1)]
    assert _points(tsdb, KIND_HISTOGRAM_BUCKET, "victim_cpi",
                   {"le": "2"}) == [(10, 3)]
    assert _points(tsdb, KIND_HISTOGRAM_BUCKET, "victim_cpi",
                   {"le": "+Inf"}) == [(10, 4)]
    assert _points(tsdb, KIND_HISTOGRAM_COUNT, "victim_cpi") == [(10, 4)]
    # Only integer tallies are stored — the float sum never enters the TSDB.
    for line in tsdb.dump_lines():
        record = json.loads(line)
        for _t, value in record["points"]:
            assert isinstance(value, int), record


def test_scrape_interval_gauge_from_second_scrape_on():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    tsdb = TimeSeriesDB()
    tsdb.scrape_registry(10, registry)
    assert tsdb.series(KIND_GAUGE, SCRAPE_INTERVAL_GAUGE) == []
    tsdb.scrape_registry(70, registry)
    tsdb.scrape_registry(190, registry)  # a skipped scrape shows up as 120
    assert _points(tsdb, KIND_GAUGE, SCRAPE_INTERVAL_GAUGE) == [
        (70, 60.0), (190, 120.0)]
    assert tsdb.scrapes == 3
    assert tsdb.last_scrape_t == 190


def test_extra_gauges_are_recorded_but_not_in_registry():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    tsdb = TimeSeriesDB()
    tsdb.scrape_registry(10, registry, extra_gauges={"fleet_machines": 4})
    assert _points(tsdb, KIND_GAUGE, "fleet_machines") == [(10, 4.0)]
    assert list(registry.gauges()) == []  # synthesized, never written back


# -- sharded-state equivalence ------------------------------------------------


def test_scrape_states_equals_scrape_registry():
    """N partial states summed == one fused registry, byte for byte."""
    fused = MetricsRegistry()
    part_a, part_b = MetricsRegistry(), MetricsRegistry()
    for registry, n in ((fused, 3), (part_a, 3)):
        registry.counter("samples_ingested").inc(n)
    for registry, n in ((fused, 4), (part_b, 4)):
        registry.counter("samples_ingested").inc(n)
        registry.gauge("caps_active", machine="m1").set(2)
    for registry in (fused, part_a):
        registry.histogram("cpi", buckets=(1.0,)).observe(0.5)
    for registry in (fused, part_b):
        registry.histogram("cpi", buckets=(1.0,)).observe(2.5)

    single, sharded = TimeSeriesDB(), TimeSeriesDB()
    single.scrape_registry(10, fused, extra_gauges={"fleet_machines": 2})
    sharded.scrape_states(10, [export_state(part_a), export_state(part_b)],
                          extra_gauges={"fleet_machines": 2})
    assert sharded.dump_lines() == single.dump_lines()


def test_scrape_states_rejects_mismatched_bucket_bounds():
    part_a, part_b = MetricsRegistry(), MetricsRegistry()
    part_a.histogram("cpi", buckets=(1.0,)).observe(0.5)
    part_b.histogram("cpi", buckets=(2.0,)).observe(0.5)
    with pytest.raises(ValueError, match="bucket bounds differ"):
        TimeSeriesDB().scrape_states(
            10, [export_state(part_a), export_state(part_b)])


def test_exclude_counters_skips_per_worker_instruments():
    registry = MetricsRegistry()
    registry.counter("sim_ticks").inc(600)
    registry.counter("samples_ingested").inc(3)
    tsdb = TimeSeriesDB()
    tsdb.scrape_registry(10, registry, exclude_counters=("sim_ticks",))
    assert tsdb.instrument_names() == ["samples_ingested"]


# -- memory bound and export --------------------------------------------------


def test_max_points_bounds_every_series():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    tsdb = TimeSeriesDB(max_points=4)
    for i in range(10):
        counter.inc()
        tsdb.scrape_registry(10 + 60 * i, registry)
    points = _points(tsdb, KIND_COUNTER, "c")
    assert len(points) == 4
    assert points[-1] == (550, 1.0)
    with pytest.raises(ValueError):
        TimeSeriesDB(max_points=1)


def test_dump_and_export_jsonl(tmp_path):
    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.counter("a", reason="x").inc(2)
    registry.gauge("g").set(1.5)
    tsdb = TimeSeriesDB()
    tsdb.scrape_registry(10, registry)
    lines = tsdb.dump_lines()
    records = [json.loads(line) for line in lines]
    # Sorted by (kind, name, labels); every line is self-describing JSON.
    assert [(r["kind"], r["name"]) for r in records] == [
        ("counter", "a"), ("counter", "b"), ("gauge", "g")]
    assert records[0]["labels"] == {"reason": "x"}
    assert records[0]["points"] == [[10, 2]]
    assert records[2]["points"] == [[10, 1.5]]

    out = tmp_path / "series.jsonl"
    assert tsdb.export_jsonl(str(out)) == 3
    assert out.read_text().splitlines() == lines
