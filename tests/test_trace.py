"""Unit tests for repro.cluster.trace."""

import math

import pytest

from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.cluster.trace import TraceRecorder, load_trace
from repro.testing import make_quiet_machine, make_scripted_job


def build_sim(n_tasks=2):
    machine = make_quiet_machine()
    sim = ClusterSimulation([machine], SimConfig(seed=1))
    for i in range(n_tasks):
        sim.scheduler.submit(make_scripted_job(f"j{i}", [1.0 + i],
                                               cpu_limit=4.0))
    return sim


class TestRecording:
    def test_records_all_tasks_by_default(self):
        sim = build_sim(2)
        recorder = TraceRecorder(sim)
        sim.run(10)
        assert recorder.tasknames() == ["j0/0", "j1/0"]
        assert len(recorder.points) == 20

    def test_task_filter(self):
        sim = build_sim(3)
        recorder = TraceRecorder(sim, task_filter=lambda n: n == "j1/0")
        sim.run(5)
        assert recorder.tasknames() == ["j1/0"]

    def test_decimation(self):
        sim = build_sim(1)
        recorder = TraceRecorder(sim, interval=5)
        sim.run(20)
        ts = [p.t for p in recorder.points]
        assert ts == [0, 5, 10, 15]

    def test_point_contents(self):
        sim = build_sim(1)
        recorder = TraceRecorder(sim)
        sim.run(3)
        point = recorder.points[0]
        assert point.taskname == "j0/0"
        assert point.jobname == "j0"
        assert point.machine == "m0"
        assert point.grant == pytest.approx(1.0)
        assert point.cpi > 0
        assert point.capped is False

    def test_capped_flag_tracks_cgroup(self):
        sim = build_sim(1)
        recorder = TraceRecorder(sim)
        task = sim.scheduler.jobs["j0"].tasks[0]
        task.cgroup.apply_cap(0.1, now=0, duration=5)
        sim.run(8)
        capped_flags = [p.capped for p in recorder.points]
        assert capped_flags[:5] == [True] * 5
        assert capped_flags[5:] == [False] * 3

    def test_validation(self):
        sim = build_sim(1)
        with pytest.raises(ValueError, match="interval"):
            TraceRecorder(sim, interval=0)


class TestViews:
    def test_series(self):
        sim = build_sim(2)
        recorder = TraceRecorder(sim)
        sim.run(6)
        ts, grants = recorder.series("j1/0", field="grant")
        assert ts == list(range(6))
        assert all(g == pytest.approx(2.0) for g in grants)
        _, cpis = recorder.series("j1/0", field="cpi")
        assert all(c > 0 for c in cpis)

    def test_series_unknown_field(self):
        sim = build_sim(1)
        recorder = TraceRecorder(sim)
        with pytest.raises(ValueError, match="field"):
            recorder.series("j0/0", field="latency")

    def test_window(self):
        sim = build_sim(1)
        recorder = TraceRecorder(sim)
        sim.run(10)
        assert [p.t for p in recorder.window(3, 6)] == [3, 4, 5]
        with pytest.raises(ValueError, match="empty window"):
            recorder.window(5, 5)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        sim = build_sim(2)
        recorder = TraceRecorder(sim)
        sim.run(5)
        path = tmp_path / "trace.jsonl"
        written = recorder.save(path)
        loaded = load_trace(path)
        assert written == len(loaded) == len(recorder.points)
        assert loaded == recorder.points

    def test_corrupt_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t": 1}\n')
        with pytest.raises(ValueError, match="bad trace record"):
            load_trace(path)

    def test_nan_cpi_survives_roundtrip(self, tmp_path):
        # JSON has no NaN literal by default; json module emits NaN tokens
        # which it can also read back.
        from repro.cluster.trace import TracePoint
        sim = build_sim(1)
        recorder = TraceRecorder(sim)
        recorder.points.append(TracePoint(
            t=0, machine="m0", taskname="x/0", jobname="x",
            grant=0.0, cpi=float("nan"), capped=False))
        path = tmp_path / "trace.jsonl"
        recorder.save(path)
        loaded = load_trace(path)
        assert math.isnan(loaded[-1].cpi)
