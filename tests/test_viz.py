"""Unit tests for repro.analysis.viz (terminal plots)."""

import pytest

from repro.analysis.viz import cdf_plot, histogram, sparkline, timeseries


class TestSparkline:
    def test_shape_follows_data(self):
        assert sparkline([1, 2, 3, 4, 3, 2, 1]) == "▁▃▆█▆▃▁"

    def test_constant_series_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_width_resampling(self):
        line = sparkline(range(100), width=10)
        assert len(line) == 10
        # Monotone data stays monotone after resampling.
        assert line == "".join(sorted(line))

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2], width=10)) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            sparkline([])
        with pytest.raises(ValueError, match="non-finite"):
            sparkline([1.0, float("nan")])
        with pytest.raises(ValueError, match="width"):
            sparkline([1.0], width=0)


class TestHistogram:
    def test_counts_sum_to_n(self):
        text = histogram([1, 1, 2, 3, 3, 3], bins=3)
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()]
        assert sum(counts) == 6

    def test_peak_bin_fills_width(self):
        text = histogram([1] * 10 + [2], bins=2, width=20)
        first = text.splitlines()[0]
        assert "#" * 20 in first

    def test_single_value(self):
        text = histogram([7.0, 7.0], bins=4)
        assert text.count("\n") == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([], bins=3)
        with pytest.raises(ValueError, match="bins"):
            histogram([1.0], bins=0)


class TestCdfPlot:
    def test_rows_and_monotone(self):
        text = cdf_plot(range(100), points=5)
        lines = text.splitlines()
        assert len(lines) == 5
        quantile_values = [float(line.split("|")[0].split()[1])
                           for line in lines]
        assert quantile_values == sorted(quantile_values)
        assert lines[0].startswith("p  0.0")
        assert lines[-1].startswith("p100.0")

    def test_validation(self):
        with pytest.raises(ValueError, match="points"):
            cdf_plot([1.0, 2.0], points=1)


class TestTimeseries:
    def test_dimensions(self):
        text = timeseries([1, 5, 2, 8, 3], width=5, height=4)
        lines = text.splitlines()
        assert len(lines) == 4
        assert all("|" in line for line in lines)

    def test_extremes_labelled(self):
        text = timeseries([0.0, 10.0], width=2, height=3)
        assert "10" in text.splitlines()[0]
        assert "0" in text.splitlines()[-1]

    def test_one_star_per_column(self):
        text = timeseries([1, 2, 3, 4], width=4, height=5)
        columns = zip(*(line.split("|", 1)[1] for line in text.splitlines()))
        assert all("".join(col).count("*") == 1 for col in columns)

    def test_validation(self):
        with pytest.raises(ValueError):
            timeseries([1.0], width=1, height=5)
