"""Unit tests for repro.workloads.websearch (the Figures 3-5 substrate)."""

import numpy as np
import pytest

from repro.analysis.stats import pearson_correlation
from repro.cluster.job import Job
from repro.cluster.task import SchedulingClass
from repro.workloads.websearch import (
    LatencyModel,
    SearchTier,
    WebSearchWorkload,
    make_websearch_job_spec,
)


def latency_cpi_correlation(tier, n=400, seed=0):
    """Correlation between synthetic latency and the CPI ratio driving it."""
    rng = np.random.default_rng(seed)
    model = LatencyModel(tier, rng)
    ratios = rng.uniform(1.0, 1.6, size=n)
    latencies = [model.request_latency_ms(r) for r in ratios]
    return pearson_correlation(ratios, latencies)


class TestLatencyModel:
    def test_leaf_latency_tracks_cpi(self):
        # Figure 4a: leaf shows high correlation.
        assert latency_cpi_correlation(SearchTier.LEAF) > 0.65

    def test_intermediate_weaker_than_leaf(self):
        leaf = latency_cpi_correlation(SearchTier.LEAF)
        mid = latency_cpi_correlation(SearchTier.INTERMEDIATE)
        assert mid > 0.4
        assert mid < leaf

    def test_root_poorly_correlated(self):
        # Figure 4c: the root's latency is set by its children, not itself.
        assert latency_cpi_correlation(SearchTier.ROOT) < 0.3

    def test_latency_positive(self):
        rng = np.random.default_rng(0)
        model = LatencyModel(SearchTier.LEAF, rng)
        assert model.request_latency_ms(1.0) > 0

    def test_higher_cpi_higher_expected_latency(self):
        rng = np.random.default_rng(0)
        model = LatencyModel(SearchTier.LEAF, rng)
        low = np.mean([model.request_latency_ms(1.0) for _ in range(300)])
        high = np.mean([model.request_latency_ms(1.5) for _ in range(300)])
        assert high > low * 1.2

    def test_invalid_ratio(self):
        model = LatencyModel(SearchTier.LEAF, np.random.default_rng(0))
        with pytest.raises(ValueError):
            model.request_latency_ms(0.0)


class TestWebSearchWorkload:
    def test_demand_follows_diurnal_pattern(self):
        rng = np.random.default_rng(0)
        workload = WebSearchWorkload(SearchTier.LEAF, rng, demand_noise=0.0)
        peak = max(workload.cpu_demand(t) for t in range(0, 86400, 600))
        trough = min(workload.cpu_demand(t) for t in range(0, 86400, 600))
        assert peak > trough * 1.2

    def test_cpi_modulation_small(self):
        rng = np.random.default_rng(0)
        workload = WebSearchWorkload(SearchTier.LEAF, rng,
                                     cpi_diurnal_amplitude=0.04)
        cpis = []
        for t in range(0, 86400, 600):
            workload.on_tick(t, 1.0, False)
            cpis.append(workload.base_cpi())
        cv = np.std(cpis) / np.mean(cpis)
        assert 0.01 < cv < 0.05  # Figure 5: ~4% coefficient of variation

    def test_baseline_cpi_per_tier(self):
        rng = np.random.default_rng(0)
        leaf = WebSearchWorkload(SearchTier.LEAF, rng)
        root = WebSearchWorkload(SearchTier.ROOT, rng)
        assert leaf.baseline_cpi() > root.baseline_cpi()

    def test_leaf_has_more_threads(self):
        rng = np.random.default_rng(0)
        leaf = WebSearchWorkload(SearchTier.LEAF, rng)
        root = WebSearchWorkload(SearchTier.ROOT, rng)
        assert leaf.thread_count(0) > root.thread_count(0)


class TestJobSpec:
    def test_spec_shape(self):
        spec = make_websearch_job_spec("search-leaf", SearchTier.LEAF,
                                       num_tasks=100)
        assert spec.scheduling_class is SchedulingClass.LATENCY_SENSITIVE
        assert spec.num_tasks == 100

    def test_tasks_get_independent_noise(self):
        spec = make_websearch_job_spec("leaf", SearchTier.LEAF, num_tasks=2,
                                       seed=3)
        job = Job(spec)
        w0, w1 = (t.workload for t in job)
        series0 = [w0.cpu_demand(t) for t in range(20)]
        series1 = [w1.cpu_demand(t) for t in range(20)]
        assert series0 != series1

    def test_same_seed_reproducible(self):
        def demands(seed):
            job = Job(make_websearch_job_spec("leaf", SearchTier.LEAF,
                                              num_tasks=1, seed=seed))
            return [job.tasks[0].workload.cpu_demand(t) for t in range(20)]

        assert demands(5) == demands(5)
        assert demands(5) != demands(6)
