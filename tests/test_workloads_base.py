"""Unit tests for repro.workloads.base."""

import numpy as np
import pytest

from repro.testing import QUIET_PROFILE
from repro.workloads.base import SyntheticWorkload, TransactionCounter
from repro.workloads.demand import constant


class TestSyntheticWorkload:
    def test_demand_clipped_at_zero(self):
        workload = SyntheticWorkload(1.0, QUIET_PROFILE, lambda t: -5.0)
        assert workload.cpu_demand(0) == 0.0

    def test_base_cpi_without_modulation(self):
        workload = SyntheticWorkload(1.7, QUIET_PROFILE, constant(1.0))
        assert workload.base_cpi() == 1.7

    def test_cpi_modulation_tracks_tick_time(self):
        workload = SyntheticWorkload(
            1.0, QUIET_PROFILE, constant(1.0),
            cpi_modulation=lambda t: 2.0 if t >= 100 else 1.0)
        assert workload.base_cpi() == 1.0
        workload.on_tick(100, 1.0, False)
        assert workload.base_cpi() == 2.0

    def test_thread_count_fixed_or_callable(self):
        fixed = SyntheticWorkload(1.0, QUIET_PROFILE, constant(1.0), threads=5)
        assert fixed.thread_count(0) == 5
        dynamic = SyntheticWorkload(1.0, QUIET_PROFILE, constant(1.0),
                                    threads=lambda t: t + 1)
        assert dynamic.thread_count(7) == 8

    def test_on_tick_accounting(self):
        workload = SyntheticWorkload(1.0, QUIET_PROFILE, constant(1.0))
        assert workload.on_tick(0, 0.5, False) is None
        workload.on_tick(1, 0.5, True)
        assert workload.granted_cpu_seconds == pytest.approx(1.0)
        assert workload.capped_seconds == 1

    def test_invalid_base_cpi(self):
        with pytest.raises(ValueError, match="base_cpi"):
            SyntheticWorkload(0.0, QUIET_PROFILE, constant(1.0))


class TestTransactionCounter:
    def test_mean_rate_matches_cost(self):
        rng = np.random.default_rng(1)
        counter = TransactionCounter(1e6, rng)
        readings = [counter.transactions_for(1e8) for _ in range(2000)]
        assert np.mean(readings) == pytest.approx(100.0, rel=0.05)

    def test_zero_instructions_zero_transactions(self):
        counter = TransactionCounter(1e6, np.random.default_rng(0))
        assert counter.transactions_for(0.0) == 0.0

    def test_noiseless_configuration_is_exact(self):
        counter = TransactionCounter(1e6, np.random.default_rng(0),
                                     cost_wander=0.0, measurement_noise=0.0)
        assert counter.transactions_for(5e6) == pytest.approx(5.0)

    def test_wander_decorations_correlation(self):
        # With wander, TPS from fixed IPS is noisy but strongly correlated
        # with varying IPS — the Figure 2 requirement (r ~ 0.97, not 1.0).
        rng = np.random.default_rng(2)
        counter = TransactionCounter(1e6, rng)
        ips = np.linspace(1e8, 2e8, 120)
        tps = [counter.transactions_for(i) for i in ips]
        r = np.corrcoef(ips, tps)[0, 1]
        assert 0.9 < r < 1.0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="positive"):
            TransactionCounter(0.0, rng)
        with pytest.raises(ValueError, match="noise"):
            TransactionCounter(1e6, rng, cost_wander=-0.1)
        counter = TransactionCounter(1e6, rng)
        with pytest.raises(ValueError, match=">= 0"):
            counter.transactions_for(-1.0)
