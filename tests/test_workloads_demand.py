"""Unit tests for repro.workloads.demand combinators."""

import numpy as np
import pytest

from repro.workloads.demand import (
    bimodal,
    constant,
    on_off,
    phased,
    ramp,
    scaled,
    with_noise,
)


class TestConstant:
    def test_value(self):
        fn = constant(1.5)
        assert fn(0) == 1.5
        assert fn(10**9) == 1.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            constant(-1.0)


class TestOnOff:
    def test_square_wave(self):
        fn = on_off(on_level=4.0, off_level=0.5, period=10, duty=0.5)
        assert [fn(t) for t in range(10)] == [4.0] * 5 + [0.5] * 5

    def test_duty_cycle(self):
        fn = on_off(1.0, 0.0, period=10, duty=0.3)
        on_seconds = sum(1 for t in range(10) if fn(t) == 1.0)
        assert on_seconds == 3

    def test_phase_shift(self):
        base = on_off(1.0, 0.0, period=10, duty=0.5)
        shifted = on_off(1.0, 0.0, period=10, duty=0.5, phase=5)
        assert shifted(0) == base(5)
        assert shifted(5) == base(10 % 10)

    def test_duty_extremes(self):
        always_on = on_off(1.0, 0.0, period=10, duty=1.0)
        assert all(always_on(t) == 1.0 for t in range(20))
        always_off = on_off(1.0, 0.0, period=10, duty=0.0)
        assert all(always_off(t) == 0.0 for t in range(20))

    def test_validation(self):
        with pytest.raises(ValueError, match="period"):
            on_off(1.0, 0.0, period=0)
        with pytest.raises(ValueError, match="duty"):
            on_off(1.0, 0.0, period=10, duty=1.5)
        with pytest.raises(ValueError, match="levels"):
            on_off(-1.0, 0.0, period=10)


class TestPhased:
    def test_schedule(self):
        fn = phased([(2, 1.0), (3, 2.0)], cycle=False)
        assert [fn(t) for t in range(6)] == [1.0, 1.0, 2.0, 2.0, 2.0, 2.0]

    def test_cycling(self):
        fn = phased([(2, 1.0), (2, 2.0)], cycle=True)
        assert [fn(t) for t in range(8)] == [1.0, 1.0, 2.0, 2.0] * 2

    def test_hold_final_level(self):
        fn = phased([(1, 5.0)], cycle=False)
        assert fn(100) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            phased([])
        with pytest.raises(ValueError, match="duration"):
            phased([(0, 1.0)])
        with pytest.raises(ValueError, match="level"):
            phased([(1, -1.0)])


class TestRamp:
    def test_linear(self):
        fn = ramp(0.0, 10.0, duration=10)
        assert fn(0) == 0.0
        assert fn(5) == pytest.approx(5.0)
        assert fn(10) == 10.0
        assert fn(100) == 10.0

    def test_downward(self):
        fn = ramp(10.0, 0.0, duration=10)
        assert fn(5) == pytest.approx(5.0)


class TestBimodal:
    def test_low_and_high_phases(self):
        fn = bimodal(0.05, 0.35, period=10, low_fraction=0.5)
        values = {fn(t) for t in range(10)}
        assert values == {0.05, 0.35}

    def test_low_fraction(self):
        fn = bimodal(0.0, 1.0, period=10, low_fraction=0.7)
        low_seconds = sum(1 for t in range(10) if fn(t) == 0.0)
        assert low_seconds == 7


class TestNoise:
    def test_zero_sigma_is_identity(self):
        rng = np.random.default_rng(0)
        base = constant(2.0)
        assert with_noise(base, 0.0, rng) is base

    def test_noise_centred_on_base(self):
        rng = np.random.default_rng(0)
        fn = with_noise(constant(2.0), 0.05, rng)
        values = [fn(0) for _ in range(2000)]
        assert np.mean(values) == pytest.approx(2.0, rel=0.02)
        assert np.std(values) > 0

    def test_never_negative(self):
        rng = np.random.default_rng(0)
        fn = with_noise(constant(0.01), 2.0, rng)
        assert all(fn(0) >= 0.0 for _ in range(500))

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            with_noise(constant(1.0), -0.1, np.random.default_rng(0))


class TestScaled:
    def test_modulation(self):
        fn = scaled(constant(2.0), lambda t: 0.5 if t < 10 else 2.0)
        assert fn(0) == 1.0
        assert fn(10) == 4.0

    def test_clips_negative_factor(self):
        fn = scaled(constant(2.0), lambda t: -1.0)
        assert fn(0) == 0.0
