"""Unit tests for repro.workloads.diurnal."""

import pytest

from repro.cluster.simulation import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.workloads.diurnal import DiurnalPattern


class TestShape:
    def test_mean_near_one(self):
        pattern = DiurnalPattern(amplitude=0.25)
        values = [pattern(t) for t in range(0, SECONDS_PER_DAY, 300)]
        assert sum(values) / len(values) == pytest.approx(1.0, abs=0.02)

    def test_peak_near_configured_hour(self):
        pattern = DiurnalPattern(amplitude=0.25, peak_hour=20.0)
        best_t = max(range(0, SECONDS_PER_DAY, 60), key=pattern)
        peak_hour = best_t / SECONDS_PER_HOUR
        assert abs(peak_hour - 20.0) < 1.5

    def test_trough_opposite_peak(self):
        pattern = DiurnalPattern(amplitude=0.25, peak_hour=20.0)
        worst_t = min(range(0, SECONDS_PER_DAY, 60), key=pattern)
        trough_hour = worst_t / SECONDS_PER_HOUR
        # Trough lands in the early-morning half of the cycle.
        assert 2.0 < trough_hour < 14.0

    def test_daily_periodicity(self):
        pattern = DiurnalPattern()
        for t in (0, 3600, 50000):
            assert pattern(t) == pytest.approx(pattern(t + SECONDS_PER_DAY))

    def test_amplitude_bounds_swing(self):
        pattern = DiurnalPattern(amplitude=0.25)
        lo, hi = pattern.daily_extremes()
        assert 0.7 <= lo < 1.0 < hi <= 1.3

    def test_zero_amplitude_is_flat(self):
        pattern = DiurnalPattern(amplitude=0.0)
        assert pattern(0) == pytest.approx(pattern(40000)) == pytest.approx(1.0)

    def test_never_negative(self):
        pattern = DiurnalPattern(amplitude=0.99)
        assert all(pattern(t) >= 0.0 for t in range(0, SECONDS_PER_DAY, 600))


class TestWeekend:
    def test_weekend_damping(self):
        pattern = DiurnalPattern(amplitude=0.2, weekend_damping=0.3)
        weekday_noon = 2 * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR
        saturday_noon = 5 * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR
        assert pattern(saturday_noon) == pytest.approx(
            pattern(weekday_noon) * 0.7)

    def test_no_damping_by_default(self):
        pattern = DiurnalPattern()
        assert pattern(5 * SECONDS_PER_DAY) == pytest.approx(pattern(0))


class TestValidation:
    def test_amplitude_range(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalPattern(amplitude=1.0)

    def test_peak_hour_range(self):
        with pytest.raises(ValueError, match="peak_hour"):
            DiurnalPattern(peak_hour=24.0)

    def test_damping_range(self):
        with pytest.raises(ValueError, match="weekend_damping"):
            DiurnalPattern(weekend_damping=1.0)
